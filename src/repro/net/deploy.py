"""One-call asyncio deployment of a whole FLStore on localhost.

Starts maintainer, indexer, and controller servers, wires the gossip mesh,
and runs the index pump (the background task that moves tag postings from
maintainers to their champion indexers — the role the maintainer actor's
flush timer plays in the in-process runtimes).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from ..core.config import FLStoreConfig
from ..flstore.range_map import OwnershipPlan
from .client import AsyncFLStoreClient, _Connection
from .server import ControllerServer, IndexerServer, MaintainerServer


class FLStoreNetDeployment:
    """A running localhost FLStore: servers, gossip, and the index pump."""

    def __init__(
        self,
        n_maintainers: int = 3,
        n_indexers: int = 1,
        batch_size: int = 100,
        config: Optional[FLStoreConfig] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.config = config or FLStoreConfig()
        maintainer_names = [f"net/maintainer/{i}" for i in range(n_maintainers)]
        self.plan = OwnershipPlan(maintainer_names, batch_size=batch_size)
        self.maintainers: List[MaintainerServer] = [
            MaintainerServer(name, self.plan, config=self.config, host=host)
            for name in maintainer_names
        ]
        self.indexers: List[IndexerServer] = [
            IndexerServer(f"net/indexer/{i}", host=host) for i in range(n_indexers)
        ]
        self.controller: Optional[ControllerServer] = None
        self._host = host
        self._pump_task: Optional[asyncio.Task] = None
        self._indexer_conns: List[_Connection] = []
        self._maintainer_conns: List[_Connection] = []

    async def start(self) -> str:
        """Start everything; returns the controller's address."""
        maintainer_addresses: Dict[str, str] = {}
        for server in self.maintainers:
            host, port = await server.start()
            maintainer_addresses[server.core.name] = f"{host}:{port}"
        indexer_addresses: Dict[str, str] = {}
        for server in self.indexers:
            host, port = await server.start()
            indexer_addresses[server.core.name] = f"{host}:{port}"

        peer_addrs = [
            (self._host, server.port) for server in self.maintainers
        ]
        for i, server in enumerate(self.maintainers):
            server.set_peers([a for j, a in enumerate(peer_addrs) if j != i])

        self.controller = ControllerServer(
            self.plan,
            maintainer_addresses,
            indexer_addresses,
            config=self.config,
            host=self._host,
        )
        await self.controller.start()

        self._maintainer_conns = [
            _Connection(addr) for addr in maintainer_addresses.values()
        ]
        self._indexer_conns = [_Connection(addr) for addr in indexer_addresses.values()]
        self._pump_task = asyncio.create_task(self._index_pump())
        return self.controller.address

    async def _index_pump(self) -> None:
        """Move tag postings maintainer → champion indexer, continuously."""
        names = sorted(ix.core.name for ix in self.indexers)
        while True:
            await asyncio.sleep(self.config.gossip_interval)
            for conn in self._maintainer_conns:
                try:
                    response = await conn.request({"type": "drain_postings"})
                except ConnectionError:
                    continue
                postings = response.get("postings", [])
                if not postings:
                    continue
                buckets: Dict[str, List[List[Any]]] = {}
                for key, value, lid in postings:
                    target = names[hash(key) % len(names)]
                    buckets.setdefault(target, []).append([key, value, lid])
                for target, bucket in buckets.items():
                    index = names.index(target)
                    try:
                        # index_update has no response frame; fire directly.
                        await self._send_oneway(
                            self._indexer_conns[index],
                            {"type": "index_update", "postings": bucket},
                        )
                    except ConnectionError:
                        continue

    @staticmethod
    async def _send_oneway(conn: _Connection, message: Dict[str, Any]) -> None:
        from .protocol import write_frame  # local import avoids a cycle

        async with conn._lock:
            await conn._ensure_locked()
            await write_frame(conn._writer, message, codec=conn.codec)

    async def client(
        self, client_id: str = "net-client", codec: str = "binary"
    ) -> AsyncFLStoreClient:
        """Create a connected client (``codec`` as in AsyncFLStoreClient)."""
        assert self.controller is not None, "deployment not started"
        client = AsyncFLStoreClient(
            self.controller.address, client_id=client_id, codec=codec
        )
        await client.connect()
        return client

    async def stop(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        for conn in self._maintainer_conns + self._indexer_conns:
            await conn.close()
        for server in self.maintainers + self.indexers:
            await server.stop()
        if self.controller is not None:
            await self.controller.stop()
