"""Tagged-JSON codec for every protocol message.

The in-process runtimes pass Python objects by reference; running the same
actors over real sockets requires serialising them.  This codec maps each
protocol dataclass to a tagged JSON object (``{"$": "<type>", ...}``) and
back, recursively — safe to decode (no code execution, unlike pickle) and
symmetric (``decode(encode(x)) == x`` for every message type).

Containers are tagged too (``$l`` list, ``$t`` tuple, ``$d`` dict), so
arbitrary JSON-representable application bodies round-trip with their exact
Python types, and dict keys are not restricted to strings.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple, Type

from ..baseline.sequencer import ReservedRange, SequencerRequest
from ..chariots import messages as cmsg
from ..core.record import AppendResult, LogEntry, ReadRules, Record, RecordId
from ..core.errors import NetworkProtocolError
from ..flstore import messages as fmsg
from ..runtime.messages import RecordBatch

# --------------------------------------------------------------------- #
# Core value types with bespoke encodings
# --------------------------------------------------------------------- #


def _encode_record(record: Record) -> Dict[str, Any]:
    return {
        "host": record.host,
        "toid": record.toid,
        "body": encode_value(record.body),
        "tags": [[k, encode_value(v)] for k, v in record.tags],
        "deps": [[dc, t] for dc, t in record.deps],
        "internal": record.internal,
    }


def _decode_record(data: Dict[str, Any]) -> Record:
    return Record(
        rid=RecordId(data["host"], data["toid"]),
        body=decode_value(data["body"]),
        tags=tuple((k, decode_value(v)) for k, v in data["tags"]),
        deps=tuple((dc, t) for dc, t in data["deps"]),
        internal=data["internal"],
    )


_Encoder = Callable[[Any], Dict[str, Any]]
_Decoder = Callable[[Dict[str, Any]], Any]

_SPECIALS: Dict[str, Tuple[Type[Any], _Encoder, _Decoder]] = {}


def _register(
    name: str,
    cls: Type[Any],
    encoder: _Encoder,
    decoder: _Decoder,
) -> None:
    _SPECIALS[name] = (cls, encoder, decoder)


_register("Record", Record, _encode_record, _decode_record)
_register(
    "RecordId",
    RecordId,
    lambda r: {"host": r.host, "toid": r.toid},
    lambda d: RecordId(d["host"], d["toid"]),
)
_register(
    "LogEntry",
    LogEntry,
    lambda e: {"lid": e.lid, "record": _encode_record(e.record)},
    lambda d: LogEntry(d["lid"], _decode_record(d["record"])),
)
_register(
    "AppendResult",
    AppendResult,
    lambda r: {"host": r.rid.host, "toid": r.rid.toid, "lid": r.lid},
    lambda d: AppendResult(RecordId(d["host"], d["toid"]), d["lid"]),
)


def _encode_record_batch(batch: RecordBatch) -> Dict[str, Any]:
    # One frame for the whole batch: records are encoded as bare dicts, not
    # N independent {"$": "Record"} values — the type tag is paid once.
    return {"records": [_encode_record(r) for r in batch.records]}


def _decode_record_batch(data: Dict[str, Any]) -> RecordBatch:
    return RecordBatch([_decode_record(r) for r in data["records"]])


_register("RecordBatch", RecordBatch, _encode_record_batch, _decode_record_batch)

# --------------------------------------------------------------------- #
# Generic dataclass handling for the protocol messages
# --------------------------------------------------------------------- #

#: Every message type that may cross a socket.  Field values are encoded
#: with :func:`encode_value`, so nested records/entries/containers work.
_MESSAGE_TYPES: Tuple[Type[Any], ...] = (
    # FLStore
    fmsg.AppendRequest,
    fmsg.AppendReply,
    fmsg.PlaceRecords,
    fmsg.ReadRequest,
    fmsg.ReadReply,
    fmsg.ReadNewRequest,
    fmsg.ReadNewReply,
    fmsg.GossipHL,
    fmsg.HeadRequest,
    fmsg.HeadReply,
    fmsg.IndexUpdate,
    fmsg.LookupRequest,
    fmsg.LookupReply,
    fmsg.SessionRequest,
    fmsg.SessionInfo,
    fmsg.LoadReport,
    fmsg.TruncateBelow,
    fmsg.PruneIndexBelow,
    fmsg.GcReport,
    # Chariots
    cmsg.DraftRecord,
    cmsg.DraftBatch,
    cmsg.FilterBatch,
    cmsg.AdmittedBatch,
    cmsg.Token,
    cmsg.TokenPass,
    cmsg.DraftCommitted,
    cmsg.DraftCommitBatch,
    cmsg.FrontierUpdate,
    cmsg.ReplicationShipment,
    cmsg.ShipmentAck,
    cmsg.PeerVector,
    cmsg.AtableSnapshot,
    # RecordBatch is a special above: it encodes as one contiguous frame.
    # Baseline
    SequencerRequest,
    ReservedRange,
)

_BY_NAME: Dict[str, Type[Any]] = {cls.__name__: cls for cls in _MESSAGE_TYPES}
_MESSAGE_SET = set(_MESSAGE_TYPES)

# ReadRules is a plain dataclass used inside ReadRequest/LookupRequest.
_BY_NAME["ReadRules"] = ReadRules
_MESSAGE_SET.add(ReadRules)


def _dataclass_fields(obj: Any) -> Dict[str, Any]:
    import dataclasses

    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


# --------------------------------------------------------------------- #
# Recursive value encoding
# --------------------------------------------------------------------- #


def encode_value(value: Any) -> Any:
    """Encode any protocol value into tagged, JSON-serialisable form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        import base64

        return {"$": "bytes", "v": base64.b64encode(value).decode("ascii")}
    for name, (cls, encoder, _decoder) in _SPECIALS.items():
        if type(value) is cls:
            return {"$": name, "v": encoder(value)}
    if isinstance(value, RecordBatch):
        # Lazy decode-side subclasses (binary codec) take the batch frame.
        return {"$": "RecordBatch", "v": _encode_record_batch(value)}
    if type(value) in _MESSAGE_SET:
        return {
            "$": type(value).__name__,
            "v": {k: encode_value(v) for k, v in _dataclass_fields(value).items()},
        }
    if isinstance(value, tuple):
        return {"$": "t", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"$": "l", "v": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {"$": "d", "v": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    raise NetworkProtocolError(
        f"cannot encode value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):  # produced only inside tagged containers
        return [decode_value(v) for v in value]
    if not isinstance(value, dict) or "$" not in value:
        raise NetworkProtocolError(f"malformed encoded value: {value!r}")
    tag = value["$"]
    payload = value.get("v")
    if tag == "bytes":
        import base64

        return base64.b64decode(payload)
    if tag == "t":
        return tuple(decode_value(v) for v in payload)
    if tag == "l":
        return [decode_value(v) for v in payload]
    if tag == "d":
        return {decode_value(k): decode_value(v) for k, v in payload}
    if tag in _SPECIALS:
        _cls, _encoder, decoder = _SPECIALS[tag]
        return decoder(payload)
    cls = _BY_NAME.get(tag)
    if cls is None:
        raise NetworkProtocolError(f"unknown message type {tag!r}")
    kwargs = {k: decode_value(v) for k, v in payload.items()}
    return cls(**kwargs)


def registered_message_types() -> Dict[str, Type[Any]]:
    """Name → class for every type that may appear at the top of a frame.

    The binary codec derives its deterministic type table from this registry
    so both codecs always agree on what is encodable.
    """
    return dict(_BY_NAME)


def special_value_types() -> Dict[str, Type[Any]]:
    """Name → class for the core value types with bespoke encodings."""
    return {name: cls for name, (cls, _e, _d) in _SPECIALS.items()}


def encode_message(message: Any) -> Dict[str, Any]:
    """Encode a top-level protocol message (must be a registered type)."""
    encoded = encode_value(message)
    if not isinstance(encoded, dict) or "$" not in encoded:
        raise NetworkProtocolError(
            f"{type(message).__name__} is not a registered protocol message"
        )
    return encoded


def decode_message(data: Dict[str, Any]) -> Any:
    return decode_value(data)
