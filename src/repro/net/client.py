"""asyncio client for a TCP-deployed FLStore.

Mirrors the in-process client (§3's interface): session bootstrap through
the controller, post-assignment appends round-robined over the maintainer
servers, reads routed by the deterministic ownership function, tag lookups
through the indexers.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.errors import ChariotsError, NetworkProtocolError, SessionError
from ..core.record import AppendResult, LogEntry, ReadRules, Record
from ..flstore.range_map import OwnershipPlan
from .protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    HELLO_ACK_TYPE,
    HELLO_TYPE,
    WIRES,
    read_frame,
    write_frame,
)


def _parse_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    return host, int(port)


class _Connection:
    """One request/response TCP connection with lazy connect.

    ``codec`` is the *preferred* wire format.  On first connect the client
    sends a ``hello`` frame offering it; servers that understand binary ack
    it, older servers answer ``error`` and the connection silently stays on
    tagged JSON — so either side may be upgraded first.
    """

    def __init__(self, address: str, codec: str = CODEC_BINARY) -> None:
        self.address = address
        self._preferred = codec
        self._codec = CODEC_JSON  # active codec; set by negotiation
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    @property
    def codec(self) -> str:
        """The negotiated wire format (meaningful once connected)."""
        return self._codec

    async def _ensure_locked(self) -> None:
        if self._writer is not None:
            return
        host, port = _parse_address(self.address)
        self._reader, self._writer = await asyncio.open_connection(host, port)
        self._codec = CODEC_JSON
        if self._preferred != CODEC_JSON:
            await write_frame(
                self._writer,
                {"type": HELLO_TYPE, "codecs": [self._preferred, CODEC_JSON]},
            )
            response = await read_frame(self._reader)
            if response is None:
                raise NetworkProtocolError(
                    f"server {self.address} closed the connection"
                )
            if response.get("type") == HELLO_ACK_TYPE:
                chosen = response.get("codec", CODEC_JSON)
                if chosen in WIRES:
                    self._codec = chosen
            # Any other reply (e.g. a pre-binary server's "error") means
            # the server doesn't negotiate; stay on JSON.

    async def wire(self):
        """Connect (and negotiate) if needed; return the active wire format."""
        async with self._lock:
            await self._ensure_locked()
        return WIRES[self._codec]

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            await self._ensure_locked()
            assert self._reader is not None and self._writer is not None
            await write_frame(self._writer, message, codec=self._codec)
            response = await read_frame(self._reader)
        if response is None:
            raise NetworkProtocolError(f"server {self.address} closed the connection")
        if response.get("type") == "error":
            raise ChariotsError(response.get("error", "remote error"))
        return response

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass
            self._writer = None
            self._reader = None


class AsyncFLStoreClient:
    """Networked application client for FLStore over TCP.

    ``codec`` selects the preferred wire format ("binary" by default —
    negotiated per connection, falling back to "json" against servers that
    don't speak it; pass "json" to force the legacy format).
    """

    def __init__(
        self,
        controller_address: str,
        client_id: str = "net-client",
        codec: str = CODEC_BINARY,
    ) -> None:
        self.codec = codec
        self.controller = _Connection(controller_address, codec=codec)
        self.client_id = client_id
        self._maintainers: Dict[str, _Connection] = {}
        self._indexers: Dict[str, _Connection] = {}
        self._plan: Optional[OwnershipPlan] = None
        self._maintainer_cycle = None
        self._indexer_names: List[str] = []
        self._toids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Session
    # ------------------------------------------------------------------ #

    async def connect(self) -> None:
        info = await self.controller.request({"type": "session", "request_id": 1})
        self._maintainers = {
            name: _Connection(address, codec=self.codec)
            for name, address in info["maintainers"].items()
        }
        self._indexers = {
            name: _Connection(address, codec=self.codec)
            for name, address in info["indexers"].items()
        }
        self._indexer_names = sorted(self._indexers)
        epochs = info["epochs"]
        plan = OwnershipPlan(epochs[0][2], batch_size=epochs[0][1])
        for start_lid, batch_size, maintainers in epochs[1:]:
            plan.add_epoch(start_lid, maintainers, batch_size)
        self._plan = plan
        self._maintainer_cycle = itertools.cycle(sorted(self._maintainers))

    async def close(self) -> None:
        await self.controller.close()
        for conn in list(self._maintainers.values()) + list(self._indexers.values()):
            await conn.close()

    def _require_session(self) -> OwnershipPlan:
        if self._plan is None:
            raise SessionError("call connect() before issuing operations")
        return self._plan

    # ------------------------------------------------------------------ #
    # Operations (§3)
    # ------------------------------------------------------------------ #

    async def append(
        self,
        body: Any,
        tags: Optional[Mapping[str, Any]] = None,
        min_lid: Optional[int] = None,
    ) -> AppendResult:
        results = await self.append_records(
            [Record.make(f"client/{self.client_id}", next(self._toids), body, tags=tags)],
            min_lid=min_lid,
        )
        return results[0]

    async def append_records(
        self, records: List[Record], min_lid: Optional[int] = None
    ) -> List[AppendResult]:
        self._require_session()
        assert self._maintainer_cycle is not None
        target = next(self._maintainer_cycle)
        conn = self._maintainers[target]
        wire = await conn.wire()
        response = await conn.request(
            {
                "type": "append",
                "records": [wire.pack_record(r) for r in records],
                "min_lid": min_lid,
            }
        )
        if response["type"] == "append_deferred":
            raise ChariotsError("append deferred on its minimum-LId bound; retry later")
        return [wire.unpack_result(r) for r in response["results"]]

    async def read_lid(self, lid: int) -> LogEntry:
        plan = self._require_session()
        owner = plan.owner(lid)
        conn = self._maintainers[owner]
        wire = await conn.wire()
        response = await conn.request({"type": "read_lid", "lid": lid})
        return wire.unpack_entry(response["entries"][0])

    async def read(self, rules: ReadRules) -> List[LogEntry]:
        self._require_session()
        if rules.tag_key is not None and self._indexer_names:
            return await self._read_via_index(rules)
        entries: List[LogEntry] = []
        for conn in self._maintainers.values():
            wire = await conn.wire()
            response = await conn.request(
                {"type": "read_rules", "rules": wire.pack_rules(rules)}
            )
            entries.extend(wire.unpack_entry(e) for e in response["entries"])
        entries.sort(key=lambda e: e.lid, reverse=rules.most_recent)
        if rules.limit is not None:
            entries = entries[: rules.limit]
        return entries

    async def _read_via_index(self, rules: ReadRules) -> List[LogEntry]:
        plan = self._require_session()
        assert rules.tag_key is not None
        indexer = self._indexer_names[hash(rules.tag_key) % len(self._indexer_names)]
        response = await self._indexers[indexer].request(
            {
                "type": "lookup",
                "tag_key": rules.tag_key,
                "tag_value": rules.tag_value,
                "tag_min_value": rules.tag_min_value,
                "limit": rules.limit,
                "most_recent": rules.most_recent,
                "max_lid": rules.max_lid,
            }
        )
        entries = []
        for lid in response["lids"]:
            owner = plan.owner(lid)
            conn = self._maintainers[owner]
            wire = await conn.wire()
            reply = await conn.request({"type": "read_lid", "lid": lid})
            entries.append(wire.unpack_entry(reply["entries"][0]))
        return [e for e in entries if rules.matches(e)]

    async def head(self) -> int:
        self._require_session()
        assert self._maintainer_cycle is not None
        target = next(self._maintainer_cycle)
        response = await self._maintainers[target].request({"type": "head"})
        return response["head_lid"]
