"""asyncio client for a TCP-deployed FLStore.

Mirrors the in-process client (§3's interface): session bootstrap through
the controller, post-assignment appends round-robined over the maintainer
servers, reads routed by the deterministic ownership function, tag lookups
through the indexers.

Resilience: every request runs under the client's
:class:`~repro.core.retry.RetryPolicy` — idempotent operations (session,
reads, head queries) are retried across transport failures and per-operation
timeouts with capped, jittered backoff, and deferred appends
(:class:`~repro.core.errors.AppendDeferred`, which store nothing server-side)
are retried for any operation.  A :class:`~repro.core.retry.CircuitBreaker`
per server address sheds load from peers that keep failing
(:class:`~repro.core.errors.CircuitOpenError`) until a probe succeeds.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.errors import (
    AppendDeferred,
    ChariotsError,
    CircuitOpenError,
    NetworkProtocolError,
    SessionError,
)
from ..core.record import AppendResult, LogEntry, ReadRules, Record
from ..core.retry import CircuitBreaker, RetryPolicy
from ..flstore.range_map import OwnershipPlan
from .protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    HELLO_ACK_TYPE,
    HELLO_TYPE,
    WIRES,
    _JsonWire,
    read_frame,
    write_frame,
)


def _parse_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    return host, int(port)


class _Connection:
    """One request/response TCP connection with lazy connect.

    ``codec`` is the *preferred* wire format.  On first connect the client
    sends a ``hello`` frame offering it; servers that understand binary ack
    it, older servers answer ``error`` and the connection silently stays on
    tagged JSON — so either side may be upgraded first.
    """

    def __init__(self, address: str, codec: str = CODEC_BINARY) -> None:
        self.address = address
        self._preferred = codec
        self._codec = CODEC_JSON  # active codec; set by negotiation
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    @property
    def codec(self) -> str:
        """The negotiated wire format (meaningful once connected)."""
        return self._codec

    async def _ensure_locked(self) -> None:
        if self._writer is not None:
            return
        host, port = _parse_address(self.address)
        self._reader, self._writer = await asyncio.open_connection(host, port)
        self._codec = CODEC_JSON
        if self._preferred != CODEC_JSON:
            await write_frame(
                self._writer,
                {"type": HELLO_TYPE, "codecs": [self._preferred, CODEC_JSON]},
            )
            response = await read_frame(self._reader)
            if response is None:
                raise NetworkProtocolError(
                    f"server {self.address} closed the connection"
                )
            if response.get("type") == HELLO_ACK_TYPE:
                chosen = response.get("codec", CODEC_JSON)
                if chosen in WIRES:
                    self._codec = chosen
            # Any other reply (e.g. a pre-binary server's "error") means
            # the server doesn't negotiate; stay on JSON.

    async def wire(self) -> "_JsonWire":
        """Connect (and negotiate) if needed; return the active wire format."""
        async with self._lock:
            await self._ensure_locked()
        return WIRES[self._codec]

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            await self._ensure_locked()
            assert self._reader is not None and self._writer is not None
            await write_frame(self._writer, message, codec=self._codec)
            response = await read_frame(self._reader)
        if response is None:
            raise NetworkProtocolError(f"server {self.address} closed the connection")
        if response.get("type") == "error":
            raise ChariotsError(response.get("error", "remote error"))
        return response

    async def close(self) -> None:
        # Detach before the await so a concurrent request() reconnects
        # cleanly instead of racing the teardown of the old streams.
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def reset(self) -> None:
        """Tear the connection down so the next request reconnects.

        Called after a transport failure or timeout: the request/response
        framing on the old connection can no longer be trusted.
        """
        await self.close()


class AsyncFLStoreClient:
    """Networked application client for FLStore over TCP.

    ``codec`` selects the preferred wire format ("binary" by default —
    negotiated per connection, falling back to "json" against servers that
    don't speak it; pass "json" to force the legacy format).
    """

    def __init__(
        self,
        controller_address: str,
        client_id: str = "net-client",
        codec: str = CODEC_BINARY,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout: float = 1.0,
    ) -> None:
        self.codec = codec
        self.controller = _Connection(controller_address, codec=codec)
        self.client_id = client_id
        self.retry_policy = retry_policy or RetryPolicy(
            base_delay=0.05, max_delay=1.0, max_attempts=5, op_timeout=5.0
        )
        self._breaker_failure_threshold = breaker_failure_threshold
        self._breaker_reset_timeout = breaker_reset_timeout
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._rng = random.Random(client_id)
        self._maintainers: Dict[str, _Connection] = {}
        self._indexers: Dict[str, _Connection] = {}
        self._plan: Optional[OwnershipPlan] = None
        self._maintainer_cycle = None
        self._indexer_names: List[str] = []
        self._toids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Resilience plumbing
    # ------------------------------------------------------------------ #

    def breaker(self, address: str) -> CircuitBreaker:
        """The circuit breaker guarding the server at ``address``."""
        breaker = self._breakers.get(address)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._breaker_failure_threshold,
                reset_timeout=self._breaker_reset_timeout,
            )
            self._breakers[address] = breaker
        return breaker

    async def _request(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        idempotent: bool = True,
    ) -> Dict[str, Any]:
        """Issue one request under the retry policy and circuit breaker.

        Transport failures and per-operation timeouts are retried only for
        ``idempotent`` operations (a lost append reply could mean the append
        landed, so appends must not be blindly resent).  ``append_deferred``
        replies become :class:`AppendDeferred` and are retried for every
        operation — the server stored nothing.
        """
        policy = self.retry_policy
        breaker = self.breaker(conn.address)
        loop = asyncio.get_running_loop()
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if not breaker.allow(loop.time()):
                raise CircuitOpenError(conn.address)
            try:
                if policy.op_timeout is not None:
                    response = await asyncio.wait_for(
                        conn.request(message), policy.op_timeout
                    )
                else:
                    response = await conn.request(message)
                if response.get("type") == "append_deferred":
                    raise AppendDeferred(message.get("min_lid"))
            except AppendDeferred as exc:
                # The server answered (it is healthy) but deferred the
                # request on its minimum-LId bound: always safe to retry.
                breaker.record_success(loop.time())
                last_error = exc
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    NetworkProtocolError) as exc:
                breaker.record_failure(loop.time())
                await conn.reset()
                if not idempotent:
                    raise
                last_error = exc
            else:
                breaker.record_success(loop.time())
                return response
            if attempt + 1 < policy.max_attempts:
                await asyncio.sleep(policy.delay(attempt, self._rng))
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------ #
    # Session
    # ------------------------------------------------------------------ #

    async def connect(self) -> None:
        info = await self._request(self.controller, {"type": "session", "request_id": 1})
        self._maintainers = {
            name: _Connection(address, codec=self.codec)
            for name, address in info["maintainers"].items()
        }
        self._indexers = {
            name: _Connection(address, codec=self.codec)
            for name, address in info["indexers"].items()
        }
        self._indexer_names = sorted(self._indexers)
        epochs = info["epochs"]
        plan = OwnershipPlan(epochs[0][2], batch_size=epochs[0][1])
        for start_lid, batch_size, maintainers in epochs[1:]:
            plan.add_epoch(start_lid, maintainers, batch_size)
        self._plan = plan
        self._maintainer_cycle = itertools.cycle(sorted(self._maintainers))

    async def close(self) -> None:
        await self.controller.close()
        for conn in list(self._maintainers.values()) + list(self._indexers.values()):
            await conn.close()

    def _require_session(self) -> OwnershipPlan:
        if self._plan is None:
            raise SessionError("call connect() before issuing operations")
        return self._plan

    # ------------------------------------------------------------------ #
    # Operations (§3)
    # ------------------------------------------------------------------ #

    async def append(
        self,
        body: Any,
        tags: Optional[Mapping[str, Any]] = None,
        min_lid: Optional[int] = None,
    ) -> AppendResult:
        results = await self.append_records(
            [Record.make(f"client/{self.client_id}", next(self._toids), body, tags=tags)],
            min_lid=min_lid,
        )
        return results[0]

    async def append_records(
        self, records: List[Record], min_lid: Optional[int] = None
    ) -> List[AppendResult]:
        self._require_session()
        assert self._maintainer_cycle is not None
        target = next(self._maintainer_cycle)
        conn = self._maintainers[target]
        wire = await conn.wire()
        # Not idempotent: a lost reply could mean the records landed, so
        # transport failures surface to the caller.  Deferred appends
        # (nothing stored) are still retried by the policy.
        response = await self._request(
            conn,
            {
                "type": "append",
                "records": [wire.pack_record(r) for r in records],
                "min_lid": min_lid,
            },
            idempotent=False,
        )
        return [wire.unpack_result(r) for r in response["results"]]

    async def read_lid(self, lid: int) -> LogEntry:
        plan = self._require_session()
        owner = plan.owner(lid)
        conn = self._maintainers[owner]
        wire = await conn.wire()
        response = await self._request(conn, {"type": "read_lid", "lid": lid})
        return wire.unpack_entry(response["entries"][0])

    async def read(self, rules: ReadRules) -> List[LogEntry]:
        self._require_session()
        if rules.tag_key is not None and self._indexer_names:
            return await self._read_via_index(rules)
        entries: List[LogEntry] = []
        for conn in self._maintainers.values():
            wire = await conn.wire()
            response = await self._request(
                conn, {"type": "read_rules", "rules": wire.pack_rules(rules)}
            )
            entries.extend(wire.unpack_entry(e) for e in response["entries"])
        entries.sort(key=lambda e: e.lid, reverse=rules.most_recent)
        if rules.limit is not None:
            entries = entries[: rules.limit]
        return entries

    async def _read_via_index(self, rules: ReadRules) -> List[LogEntry]:
        plan = self._require_session()
        assert rules.tag_key is not None
        indexer = self._indexer_names[hash(rules.tag_key) % len(self._indexer_names)]
        response = await self._request(
            self._indexers[indexer],
            {
                "type": "lookup",
                "tag_key": rules.tag_key,
                "tag_value": rules.tag_value,
                "tag_min_value": rules.tag_min_value,
                "limit": rules.limit,
                "most_recent": rules.most_recent,
                "max_lid": rules.max_lid,
            }
        )
        entries = []
        for lid in response["lids"]:
            owner = plan.owner(lid)
            conn = self._maintainers[owner]
            wire = await conn.wire()
            reply = await self._request(conn, {"type": "read_lid", "lid": lid})
            entries.append(wire.unpack_entry(reply["entries"][0]))
        return [e for e in entries if rules.matches(e)]

    async def head(self) -> int:
        self._require_session()
        assert self._maintainer_cycle is not None
        target = next(self._maintainer_cycle)
        response = await self._request(self._maintainers[target], {"type": "head"})
        return response["head_lid"]
