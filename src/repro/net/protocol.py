"""Wire protocol for the asyncio FLStore deployment: length-prefixed JSON.

Frames are ``4-byte big-endian length || UTF-8 JSON body``.  Every message
is a JSON object with a ``"type"`` discriminator.  Records must have
JSON-serialisable bodies/tags (the in-process runtimes have no such
restriction; this constraint applies only to TCP deployments).
"""

from __future__ import annotations

import json
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import NetworkProtocolError
from ..core.record import AppendResult, LogEntry, ReadRules, Record, RecordId

_LENGTH = struct.Struct(">I")
MAX_FRAME_BYTES = 64 * 1024 * 1024


# --------------------------------------------------------------------- #
# Record (de)serialisation
# --------------------------------------------------------------------- #


def record_to_dict(record: Record) -> Dict[str, Any]:
    return {
        "host": record.host,
        "toid": record.toid,
        "body": record.body,
        "tags": [[k, v] for k, v in record.tags],
        "deps": [[dc, t] for dc, t in record.deps],
        "internal": record.internal,
    }


def record_from_dict(data: Dict[str, Any]) -> Record:
    return Record(
        rid=RecordId(data["host"], data["toid"]),
        body=data["body"],
        tags=tuple((k, v) for k, v in data.get("tags", [])),
        deps=tuple((dc, t) for dc, t in data.get("deps", [])),
        internal=bool(data.get("internal", False)),
    )


def entry_to_dict(entry: LogEntry) -> Dict[str, Any]:
    return {"lid": entry.lid, "record": record_to_dict(entry.record)}


def entry_from_dict(data: Dict[str, Any]) -> LogEntry:
    return LogEntry(data["lid"], record_from_dict(data["record"]))


def result_to_dict(result: AppendResult) -> Dict[str, Any]:
    return {"host": result.rid.host, "toid": result.rid.toid, "lid": result.lid}


def result_from_dict(data: Dict[str, Any]) -> AppendResult:
    return AppendResult(RecordId(data["host"], data["toid"]), data["lid"])


def rules_to_dict(rules: ReadRules) -> Dict[str, Any]:
    return {
        "min_lid": rules.min_lid,
        "max_lid": rules.max_lid,
        "host": rules.host,
        "min_toid": rules.min_toid,
        "max_toid": rules.max_toid,
        "tag_key": rules.tag_key,
        "tag_value": rules.tag_value,
        "tag_min_value": rules.tag_min_value,
        "limit": rules.limit,
        "most_recent": rules.most_recent,
        "include_internal": rules.include_internal,
    }


def rules_from_dict(data: Dict[str, Any]) -> ReadRules:
    return ReadRules(
        min_lid=data.get("min_lid"),
        max_lid=data.get("max_lid"),
        host=data.get("host"),
        min_toid=data.get("min_toid"),
        max_toid=data.get("max_toid"),
        tag_key=data.get("tag_key"),
        tag_value=data.get("tag_value"),
        tag_min_value=data.get("tag_min_value"),
        limit=data.get("limit"),
        most_recent=data.get("most_recent", True),
        include_internal=data.get("include_internal", False),
    )


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #


def encode_frame(message: Dict[str, Any]) -> bytes:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise NetworkProtocolError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetworkProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise NetworkProtocolError("frame is not a typed message object")
    return message


async def read_frame(reader: StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; returns ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise NetworkProtocolError("truncated frame header") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise NetworkProtocolError(f"declared frame length {length} too large")
    try:
        body = await reader.readexactly(length)
    except IncompleteReadError as exc:
        raise NetworkProtocolError("truncated frame body") from exc
    return decode_body(body)


async def write_frame(writer: StreamWriter, message: Dict[str, Any]) -> None:
    writer.write(encode_frame(message))
    await writer.drain()
