"""Wire protocol for the asyncio FLStore deployment.

Frames are ``4-byte big-endian length || body``.  Two body formats share
the framing and are distinguished by the first body byte:

* **Tagged JSON** (the default): a UTF-8 JSON object with a ``"type"``
  discriminator.  JSON objects always start with ``{`` (0x7B).  Records
  must have JSON-serialisable bodies/tags in this format.
* **Binary**: ``0xC5`` (:data:`~repro.net.binary_codec.BINARY_MAGIC`)
  followed by a :mod:`~repro.net.binary_codec` value that decodes to the
  same typed message dict — except hot payloads (records, entries,
  results, rules) travel as native objects instead of JSON dicts.

Servers always reply in the format the request arrived in, so each frame
is self-describing and no connection state is needed on the server side.
Clients discover whether a server speaks binary with a ``hello``
handshake (see :data:`HELLO_TYPE`); servers that predate the binary
codec answer ``error``, and the client silently stays on JSON.
"""

from __future__ import annotations

import json
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter
from typing import Any, Dict, Optional, Tuple

from ..core.errors import NetworkProtocolError
from ..core.record import AppendResult, LogEntry, ReadRules, Record, RecordId
from .binary_codec import BINARY_MAGIC, decode_value_binary, encode_value_binary
from .codec import decode_value, encode_value

_LENGTH = struct.Struct(">I")
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Codec names used in frames, negotiation, and client/server options.
CODEC_JSON = "json"
CODEC_BINARY = "binary"

#: The negotiation request/reply types (always sent as JSON frames).
HELLO_TYPE = "hello"
HELLO_ACK_TYPE = "hello_ack"

_MAGIC_BYTE = bytes([BINARY_MAGIC])


# --------------------------------------------------------------------- #
# Record (de)serialisation
# --------------------------------------------------------------------- #


def record_to_dict(record: Record) -> Dict[str, Any]:
    # Bodies and tag values go through the tagged-JSON value codec: scalars
    # stay verbatim (identical frames to pre-binary peers), while values only
    # a binary peer can write into the log (bytes, tuples, non-string dict
    # keys) get tagged forms instead of crashing ``json.dumps``.
    return {
        "host": record.host,
        "toid": record.toid,
        "body": encode_value(record.body),
        "tags": [[k, encode_value(v)] for k, v in record.tags],
        "deps": [[dc, t] for dc, t in record.deps],
        "internal": record.internal,
    }


def record_from_dict(data: Dict[str, Any]) -> Record:
    return Record(
        rid=RecordId(data["host"], data["toid"]),
        body=decode_value(data["body"]),
        tags=tuple((k, decode_value(v)) for k, v in data.get("tags", [])),
        deps=tuple((dc, t) for dc, t in data.get("deps", [])),
        internal=bool(data.get("internal", False)),
    )


def entry_to_dict(entry: LogEntry) -> Dict[str, Any]:
    return {"lid": entry.lid, "record": record_to_dict(entry.record)}


def entry_from_dict(data: Dict[str, Any]) -> LogEntry:
    return LogEntry(data["lid"], record_from_dict(data["record"]))


def result_to_dict(result: AppendResult) -> Dict[str, Any]:
    return {"host": result.rid.host, "toid": result.rid.toid, "lid": result.lid}


def result_from_dict(data: Dict[str, Any]) -> AppendResult:
    return AppendResult(RecordId(data["host"], data["toid"]), data["lid"])


def rules_to_dict(rules: ReadRules) -> Dict[str, Any]:
    return {
        "min_lid": rules.min_lid,
        "max_lid": rules.max_lid,
        "host": rules.host,
        "min_toid": rules.min_toid,
        "max_toid": rules.max_toid,
        "tag_key": rules.tag_key,
        "tag_value": rules.tag_value,
        "tag_min_value": rules.tag_min_value,
        "limit": rules.limit,
        "most_recent": rules.most_recent,
        "include_internal": rules.include_internal,
    }


def rules_from_dict(data: Dict[str, Any]) -> ReadRules:
    return ReadRules(
        min_lid=data.get("min_lid"),
        max_lid=data.get("max_lid"),
        host=data.get("host"),
        min_toid=data.get("min_toid"),
        max_toid=data.get("max_toid"),
        tag_key=data.get("tag_key"),
        tag_value=data.get("tag_value"),
        tag_min_value=data.get("tag_min_value"),
        limit=data.get("limit"),
        most_recent=data.get("most_recent", True),
        include_internal=data.get("include_internal", False),
    )


# --------------------------------------------------------------------- #
# Wire formats
# --------------------------------------------------------------------- #


class _JsonWire:
    """Pack/unpack hot payloads as plain JSON dicts (the legacy format)."""

    name = CODEC_JSON
    pack_record = staticmethod(record_to_dict)
    pack_entry = staticmethod(entry_to_dict)
    pack_result = staticmethod(result_to_dict)
    pack_rules = staticmethod(rules_to_dict)

    @staticmethod
    def unpack_record(data: Any) -> Record:
        return data if type(data) is Record else record_from_dict(data)

    @staticmethod
    def unpack_entry(data: Any) -> LogEntry:
        return data if type(data) is LogEntry else entry_from_dict(data)

    @staticmethod
    def unpack_result(data: Any) -> AppendResult:
        return data if type(data) is AppendResult else result_from_dict(data)

    @staticmethod
    def unpack_rules(data: Any) -> ReadRules:
        return data if type(data) is ReadRules else rules_from_dict(data)


class _BinaryWire(_JsonWire):
    """Hot payloads travel as native objects; the codec packs them itself."""

    name = CODEC_BINARY

    @staticmethod
    def _identity(value: Any) -> Any:
        return value

    pack_record = _identity
    pack_entry = _identity
    pack_result = _identity
    pack_rules = _identity


WIRE_JSON = _JsonWire()
WIRE_BINARY = _BinaryWire()
WIRES: Dict[str, _JsonWire] = {CODEC_JSON: WIRE_JSON, CODEC_BINARY: WIRE_BINARY}


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #


def encode_frame(message: Dict[str, Any]) -> bytes:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise NetworkProtocolError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def encode_frame_binary(message: Dict[str, Any]) -> bytes:
    body = encode_value_binary(message)
    if len(body) + 1 > MAX_FRAME_BYTES:
        raise NetworkProtocolError(f"frame too large: {len(body) + 1} bytes")
    return _LENGTH.pack(len(body) + 1) + _MAGIC_BYTE + body


def encode_frame_as(message: Dict[str, Any], codec: str) -> bytes:
    if codec == CODEC_BINARY:
        return encode_frame_binary(message)
    return encode_frame(message)


def decode_body(body: bytes) -> Dict[str, Any]:
    if body[:1] == _MAGIC_BYTE:
        message = decode_value_binary(body, 1)
        if not isinstance(message, dict) or "type" not in message:
            raise NetworkProtocolError("frame is not a typed message object")
        return message
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetworkProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise NetworkProtocolError("frame is not a typed message object")
    return message


async def _read_body(reader: StreamReader) -> Optional[bytes]:
    try:
        header = await reader.readexactly(_LENGTH.size)
    except IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise NetworkProtocolError("truncated frame header") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise NetworkProtocolError(f"declared frame length {length} too large")
    try:
        return await reader.readexactly(length)
    except IncompleteReadError as exc:
        raise NetworkProtocolError("truncated frame body") from exc


async def read_frame(reader: StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame (either format); returns ``None`` on clean EOF."""
    body = await _read_body(reader)
    if body is None:
        return None
    return decode_body(body)


async def read_frame_fmt(
    reader: StreamReader,
) -> Optional[Tuple[Dict[str, Any], str]]:
    """Like :func:`read_frame` but also reports the arrival format.

    Servers use the reported codec name to mirror the request's format in
    their reply.
    """
    body = await _read_body(reader)
    if body is None:
        return None
    codec = CODEC_BINARY if body[:1] == _MAGIC_BYTE else CODEC_JSON
    return decode_body(body), codec


async def write_frame(
    writer: StreamWriter, message: Dict[str, Any], codec: str = CODEC_JSON
) -> None:
    writer.write(encode_frame_as(message, codec))
    await writer.drain()
