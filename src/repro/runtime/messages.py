"""Base message type and sizing protocol for runtime payloads.

The capacity simulator needs two facts about every message: how many records
it carries (to charge CPU service time) and how many bytes it occupies on
the wire (to charge NIC transmission time).  Protocol messages either derive
from :class:`Payload` or duck-type ``record_count()`` / ``wire_size()``.
Messages that implement neither are treated as small control messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from ..core.record import Record

#: Wire size assumed for control messages with no payload protocol.
CONTROL_MESSAGE_BYTES = 64


@dataclass(slots=True)
class Payload:
    """Base class for protocol messages that carry records."""

    def record_count(self) -> int:
        records = getattr(self, "records", None)
        if records is not None:
            return len(records)
        return 0

    def wire_size(self, record_size: int = 512) -> int:
        records: Sequence[Record] = getattr(self, "records", ()) or ()
        return CONTROL_MESSAGE_BYTES + sum(
            record.size_bytes(record_size) for record in records
        )


def record_count_of(message: Any) -> int:
    """Record count of an arbitrary message (0 for control messages)."""
    counter = getattr(message, "record_count", None)
    if callable(counter):
        return counter()
    return 0


def wire_size_of(message: Any, record_size: int = 512) -> int:
    """Wire size of an arbitrary message in bytes."""
    sizer = getattr(message, "wire_size", None)
    if callable(sizer):
        return sizer(record_size)
    return CONTROL_MESSAGE_BYTES


@dataclass(slots=True)
class RecordBatch(Payload):
    """A generic batch of records moving between pipeline stages.

    Mostly consumed by duck-typed :class:`Payload` consumers (capacity
    accounting, chaos fault matching, ad-hoc test actors); the maintainer's
    ``on_message`` also dispatches it directly for bulk ingestion, which is
    what satisfies CHR002.
    """

    records: List[Record] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)
