"""Deterministic in-process runtime: instant (or hook-delayed) delivery.

This is the substrate for functional tests, applications, and examples.  It
delivers messages in a deterministic order, supports fault injection through
``latency_fn`` / ``drop_fn`` hooks (used by the property-based tests to
produce adversarial delivery schedules) and through a full seeded
:class:`~repro.chaos.plan.FaultPlan` (drops, delays, duplicates, reorders,
crashes, partitions), and exposes ``run_until`` so synchronous client code
can pump the network until a reply arrives.

Crash semantics (shared by every :class:`BaseRuntime` subclass): a crashed
actor's outgoing messages are discarded (a dead process sends nothing) and
its inbound traffic is *parked* — held aside and redelivered when the actor
is revived or replaced.  Parking models the reliable channels real deployments
put in front of a restarted node: peers keep retransmitting until the
replacement accepts, so from the protocol's point of view the messages were
simply delayed across the outage.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from ..core.errors import ConfigurationError
from .actor import Actor
from .loop import EventLoop

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos.plan import FaultPlan

#: latency hook signature: (src, dst, message) -> seconds of delivery delay.
LatencyFn = Callable[[str, str, Any], float]
#: drop hook signature: (src, dst, message) -> True to drop the message.
DropFn = Callable[[str, str, Any], bool]


class BaseRuntime:
    """Shared actor registry and loop plumbing for all runtimes."""

    def __init__(self) -> None:
        self.loop = EventLoop()
        self._actors: Dict[str, Actor] = {}
        self._started = False
        self._crashed: Set[str] = set()
        #: Inbound messages held for crashed actors: name -> [(src, message)].
        self._parked: Dict[str, List[Tuple[str, Any]]] = {}
        self.messages_parked = 0

    # -- registry -------------------------------------------------------- #

    def register(self, actor: Actor) -> Actor:
        """Add an actor; its ``name`` becomes its address."""
        if actor.name in self._actors:
            raise ConfigurationError(f"actor name {actor.name!r} already registered")
        actor.runtime = self
        self._actors[actor.name] = actor
        if self._started:
            actor.on_start()
        return actor

    def register_all(self, actors: Iterable[Actor]) -> List[Actor]:
        return [self.register(actor) for actor in actors]

    def replace(self, actor: Actor) -> Actor:
        """Swap the actor registered under ``actor.name`` for this one.

        Failure-injection primitive: models a crashed process restarting
        under the same address (e.g. a log maintainer recovered from its
        journal).  Messages already scheduled for the old actor are
        delivered to the replacement — exactly what a network gives a
        restarted node.
        """
        if actor.name not in self._actors:
            raise ConfigurationError(f"no actor {actor.name!r} to replace")
        actor.runtime = self
        self._actors[actor.name] = actor
        if actor.name in self._crashed:
            self.revive(actor.name)
        if self._started:
            actor.on_start()
        return actor

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def actors(self) -> List[Actor]:
        return list(self._actors.values())

    @property
    def now(self) -> float:
        return self.loop.now

    # -- crash / recovery ------------------------------------------------ #

    def crash(self, name: str) -> None:
        """Kill the actor registered under ``name``.

        Its outgoing messages are discarded and inbound traffic parks until
        :meth:`revive` or :meth:`replace` brings the address back (typically
        a :class:`~repro.runtime.supervisor.Supervisor` restarting it from a
        journal).
        """
        if name not in self._actors:
            raise ConfigurationError(f"no actor {name!r} to crash")
        self._crashed.add(name)

    def revive(self, name: str) -> None:
        """Clear ``name``'s crashed flag and redeliver its parked messages."""
        self._crashed.discard(name)
        parked = self._parked.pop(name, None)
        if parked:
            for src, message in parked:
                self.loop.schedule(
                    0.0, lambda s=src, m=message: self._on_deliver(s, name, m)
                )

    def is_crashed(self, name: str) -> bool:
        return name in self._crashed

    def crashed_actors(self) -> List[str]:
        return sorted(self._crashed)

    def _park(self, src: str, dst: str, message: Any) -> None:
        self.messages_parked += 1
        self._parked.setdefault(dst, []).append((src, message))

    def _on_deliver(self, src: str, dst: str, message: Any) -> None:
        """Delivery-time dispatch honouring crashes that happened in flight."""
        if dst in self._crashed:
            self._park(src, dst, message)
            return
        self._actors[dst].on_message(src, message)

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> "BaseRuntime":
        """Invoke every actor's ``on_start`` hook exactly once."""
        if not self._started:
            self._started = True
            for actor in list(self._actors.values()):
                actor.on_start()
        return self

    def send(self, src: str, dst: str, message: Any) -> None:
        raise NotImplementedError

    # -- execution ------------------------------------------------------- #

    def run(
        self,
        until_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Start (if needed) and drain the event loop."""
        self.start()
        return self.loop.run(until_time=until_time, max_events=max_events)

    def run_until(self, predicate: Callable[[], bool], max_events: int = 1_000_000) -> float:
        self.start()
        return self.loop.run_until(predicate, max_events=max_events)

    def run_for(self, duration: float) -> float:
        """Advance simulated time by ``duration`` seconds."""
        self.start()
        return self.loop.run(until_time=self.loop.now + duration)


class LocalRuntime(BaseRuntime):
    """Instant-delivery deterministic runtime with fault-injection hooks.

    ``chaos`` installs a :class:`~repro.chaos.plan.FaultPlan`: its message
    faults and partitions are applied to every send, and its crash events
    are scheduled when the runtime starts.  Without a plan the only cost is
    one ``is not None`` check per message.
    """

    def __init__(
        self,
        latency_fn: Optional[LatencyFn] = None,
        drop_fn: Optional[DropFn] = None,
        chaos: Optional["FaultPlan"] = None,
    ) -> None:
        super().__init__()
        self.latency_fn = latency_fn
        self.drop_fn = drop_fn
        self.chaos = chaos
        self.messages_sent = 0
        self.messages_dropped = 0

    def start(self) -> "BaseRuntime":
        if not self._started and self.chaos is not None:
            for crash in self.chaos.crashes:
                self.loop.schedule(
                    crash.at,
                    lambda name=crash.actor: self.crash(name)
                    if name in self._actors
                    else None,
                )
        return super().start()

    def send(self, src: str, dst: str, message: Any) -> None:
        self.messages_sent += 1
        if self._crashed and src in self._crashed:
            self.messages_dropped += 1  # a dead process sends nothing
            return
        if self.drop_fn is not None and self.drop_fn(src, dst, message):
            self.messages_dropped += 1
            return
        if dst not in self._actors:
            raise ConfigurationError(f"message from {src!r} to unknown actor {dst!r}")
        delay = self.latency_fn(src, dst, message) if self.latency_fn else 0.0
        if self.chaos is not None:
            copies = self.chaos.intercept(src, dst, message, self.loop.now)
            if copies is None:
                self.messages_dropped += 1
                return
            for extra in copies:
                self.loop.schedule(
                    delay + extra, lambda: self._on_deliver(src, dst, message)
                )
            return
        # Resolve the target at delivery time so a replaced actor (crash
        # recovery) receives messages that were already in flight.
        self.loop.schedule(delay, lambda: self._on_deliver(src, dst, message))


def random_latency(seed: int, max_delay: float = 0.05) -> LatencyFn:
    """A reproducible random-latency hook for adversarial delivery tests."""
    rng = random.Random(seed)

    def fn(_src: str, _dst: str, _message: Any) -> float:
        return rng.uniform(0.0, max_delay)

    return fn


def random_drops(
    seed: int,
    probability: float,
    protected: Optional[Callable[[str, str, Any], bool]] = None,
) -> DropFn:
    """A reproducible random-drop hook.

    ``protected(src, dst, msg)`` may exempt messages (e.g. never drop client
    replies so tests terminate); replication traffic is retried by design so
    it tolerates drops.
    """
    rng = random.Random(seed)

    def fn(src: str, dst: str, message: Any) -> bool:
        if protected is not None and protected(src, dst, message):
            return False
        return rng.random() < probability

    return fn


def partitioned(blocked_pairs: Iterable[Tuple[str, str]]) -> DropFn:
    """A drop hook that severs specific (src-prefix, dst-prefix) pairs.

    Useful for datacenter-partition tests: ``partitioned([("A/", "B/")])``
    blocks every message from actors whose name starts with ``A/`` to actors
    whose name starts with ``B/``.
    """
    pairs = list(blocked_pairs)

    def fn(src: str, dst: str, _message: Any) -> bool:
        return any(src.startswith(s) and dst.startswith(d) for s, d in pairs)

    return fn
