"""Supervision: detect crashed actors and restart them automatically.

The paper's failure story (§1, §6) assumes components come back: log
maintainers recover their slice from durable state and the pipeline keeps
going.  :class:`Supervisor` turns the manual crash-recovery dance from the
failure-injection tests into a runtime feature — register a recovery factory
per supervised actor, and the supervisor sweeps the runtime's crash list on a
periodic timer, rebuilds each victim (e.g. a maintainer replayed from its
:class:`~repro.flstore.journal.MemoryJournal`), and swaps it in under the
same address via :meth:`~repro.runtime.local.BaseRuntime.replace`.  Traffic
parked during the outage is redelivered to the replacement, so peers observe
nothing worse than latency.

:class:`ProcessSupervisor` extends the same contract to real OS processes:
on a :class:`~repro.runtime.multiproc.MultiprocRuntime` its sweep also asks
the runtime to check its worker processes (heartbeat staleness, exit codes,
socket EOF) and respawn the dead ones, with journal-backed actors rebuilt
through the same recovery factories.  On single-process runtimes it behaves
exactly like :class:`Supervisor`, so deployments can register one supervisor
type regardless of substrate.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, List, Optional

from ..core.retry import RetryPolicy
from .actor import Actor

#: A recovery factory rebuilds the replacement actor for one crashed address.
RecoveryFactory = Callable[[], Actor]


class Supervisor(Actor):
    """Watches the runtime for crashed actors and restarts supervised ones.

    Purely control-plane: it holds no data-path state, so losing the
    supervisor itself costs nothing but restart latency.
    """

    def __init__(self, name: str = "supervisor", check_interval: float = 0.05) -> None:
        super().__init__(name)
        self.check_interval = check_interval
        self._factories: Dict[str, RecoveryFactory] = {}
        #: Restart counts per actor name (diagnostics / test assertions).
        self.restarts: Counter[str] = Counter()

    def supervise(self, actor_name: str, factory: RecoveryFactory) -> None:
        """Register ``factory`` as the way to rebuild ``actor_name``."""
        self._factories[actor_name] = factory

    def supervised(self) -> List[str]:
        return sorted(self._factories)

    def on_start(self) -> None:
        self.set_timer(self.check_interval, self.sweep, periodic=True)

    def on_message(self, sender: str, message: Any) -> None:
        """The supervisor is timer-driven; stray messages are ignored."""

    def sweep(self) -> int:
        """Restart every supervised crashed actor; returns how many."""
        runtime = self._require_runtime()
        restarted = 0
        for name in runtime.crashed_actors():
            factory = self._factories.get(name)
            if factory is None:
                continue  # unsupervised: stays down until someone replaces it
            replacement = factory()
            runtime.replace(replacement)  # also revives + flushes parked mail
            self.restarts[name] += 1
            restarted += 1
        return restarted


class ProcessSupervisor(Supervisor):
    """Supervision for worker *processes*, not just in-process actors.

    Registered on a :class:`~repro.runtime.multiproc.MultiprocRuntime`, it
    switches the runtime into supervised mode (heartbeats, snapshots, frame
    retransmission — see that module's docstring) and drives failure
    detection + respawn from its sweep timer.  The recovery factories double
    as the journal-replay path: an actor with a registered factory is
    treated as journal-backed — excluded from worker snapshots and rebuilt
    from its durable journal on restart.

    Tuning knobs:

    * ``heartbeat_interval`` / ``heartbeat_timeout`` — worker liveness
      (timeout defaults to 10x the interval; EOF and exit codes catch hard
      crashes much sooner, heartbeats exist for *hangs*);
    * ``snapshot_interval`` — worker state capture cadence, which is also
      the output-commit release latency per cross-worker hop;
    * ``spawn_timeout`` — respawn handshake deadline;
    * ``retry`` / ``breaker_threshold`` / ``breaker_cooldown`` — respawn
      backoff via the shared :mod:`repro.core.retry` mechanisms.
    """

    def __init__(
        self,
        name: str = "supervisor",
        check_interval: float = 0.05,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: Optional[float] = None,
        snapshot_interval: float = 0.05,
        spawn_timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
    ) -> None:
        super().__init__(name, check_interval)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None else 10.0 * heartbeat_interval
        )
        self.snapshot_interval = snapshot_interval
        self.spawn_timeout = spawn_timeout
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=4)
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        #: One entry per completed worker recovery (diagnostics / metrics):
        #: {"worker", "seconds", "replayed", "reason", "from_snapshot"}.
        self.recoveries: List[Dict[str, Any]] = []

    def is_journaled(self, actor_name: str) -> bool:
        """Actors with recovery factories restore from durable journals."""
        return actor_name in self._factories

    def build_replacement(self, actor_name: str) -> Actor:
        """Rebuild one journal-backed actor (counts as a restart)."""
        replacement = self._factories[actor_name]()
        self.restarts[actor_name] += 1
        return replacement

    def record_recovery(
        self,
        worker: int,
        detected: float,
        recovered: float,
        replayed: int,
        reason: str = "",
        from_snapshot: bool = True,
    ) -> None:
        """Called by the runtime after a worker respawn completes."""
        self.restarts[f"worker/{worker}"] += 1
        self.recoveries.append(
            {
                "worker": worker,
                "seconds": max(0.0, recovered - detected),
                "replayed": replayed,
                "reason": reason,
                "from_snapshot": from_snapshot,
            }
        )

    def sweep(self) -> int:
        """Actor-level sweep where supported, plus worker-process checks."""
        runtime = self._require_runtime()
        restarted = 0
        if hasattr(runtime, "crashed_actors"):
            restarted += super().sweep()
        check = getattr(runtime, "check_workers", None)
        if check is not None:
            restarted += int(check())
        return restarted
