"""Supervision: detect crashed actors and restart them automatically.

The paper's failure story (§1, §6) assumes components come back: log
maintainers recover their slice from durable state and the pipeline keeps
going.  :class:`Supervisor` turns the manual crash-recovery dance from the
failure-injection tests into a runtime feature — register a recovery factory
per supervised actor, and the supervisor sweeps the runtime's crash list on a
periodic timer, rebuilds each victim (e.g. a maintainer replayed from its
:class:`~repro.flstore.journal.MemoryJournal`), and swaps it in under the
same address via :meth:`~repro.runtime.local.BaseRuntime.replace`.  Traffic
parked during the outage is redelivered to the replacement, so peers observe
nothing worse than latency.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, List

from .actor import Actor

#: A recovery factory rebuilds the replacement actor for one crashed address.
RecoveryFactory = Callable[[], Actor]


class Supervisor(Actor):
    """Watches the runtime for crashed actors and restarts supervised ones.

    Purely control-plane: it holds no data-path state, so losing the
    supervisor itself costs nothing but restart latency.
    """

    def __init__(self, name: str = "supervisor", check_interval: float = 0.05) -> None:
        super().__init__(name)
        self.check_interval = check_interval
        self._factories: Dict[str, RecoveryFactory] = {}
        #: Restart counts per actor name (diagnostics / test assertions).
        self.restarts: Counter[str] = Counter()

    def supervise(self, actor_name: str, factory: RecoveryFactory) -> None:
        """Register ``factory`` as the way to rebuild ``actor_name``."""
        self._factories[actor_name] = factory

    def supervised(self) -> List[str]:
        return sorted(self._factories)

    def on_start(self) -> None:
        self.set_timer(self.check_interval, self.sweep, periodic=True)

    def on_message(self, sender: str, message: Any) -> None:
        """The supervisor is timer-driven; stray messages are ignored."""

    def sweep(self) -> int:
        """Restart every supervised crashed actor; returns how many."""
        runtime = self._require_runtime()
        restarted = 0
        for name in runtime.crashed_actors():
            factory = self._factories.get(name)
            if factory is None:
                continue  # unsupervised: stays down until someone replaces it
            replacement = factory()
            runtime.replace(replacement)  # also revives + flushes parked mail
            self.restarts[name] += 1
            restarted += 1
        return restarted
