"""Deterministic discrete-event loop shared by every runtime.

Both the instant-delivery :class:`~repro.runtime.local.LocalRuntime` (used by
tests and applications) and the capacity-modelling
:class:`~repro.sim.kernel.SimRuntime` (used by benchmarks) schedule their
work on this loop, so protocol code behaves identically under both — only
*when* events fire differs.

Determinism: events at equal times fire in scheduling order (a monotonically
increasing sequence number breaks ties), so a fixed workload plus fixed seeds
always replays identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..core.errors import ConfigurationError, RuntimeExhaustedError


class EventHandle:
    """Cancellable handle returned by :meth:`EventLoop.schedule`."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """A minimal, fast event heap with simulated time."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap."""
        return sum(1 for _, _, handle in self._heap if not handle.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time, next(self._seq), callback)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def run(
        self,
        until_time: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Drain events until the heap empties or a stop condition is hit.

        ``until_time`` advances the clock to exactly that time even if the
        heap empties first (so rate measurements have a defined window).
        Returns the simulated time at which the run stopped.
        """
        processed = 0
        while self._heap:
            if stop_when is not None and stop_when():
                return self._now
            if max_events is not None and processed >= max_events:
                return self._now
            time, _seq, handle = self._heap[0]
            if until_time is not None and time > until_time:
                self._now = until_time
                return self._now
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            handle.callback()
            processed += 1
            self._events_processed += 1
        if until_time is not None and until_time > self._now:
            self._now = until_time
        return self._now

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_events: int = 1_000_000,
    ) -> float:
        """Run until ``predicate`` holds; raise if events run out first."""
        if predicate():
            return self._now
        self.run(stop_when=predicate, max_events=max_events)
        if not predicate():
            raise RuntimeExhaustedError(
                f"event loop drained ({self._events_processed} events processed) "
                "before the awaited condition became true"
            )
        return self._now
