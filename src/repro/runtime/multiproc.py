"""Multi-process runtime: one OS process per stage group, sockets between.

Every other runtime in this repo hosts all actors inside one Python
process, so the GIL caps pipeline throughput no matter how many stages a
deployment declares.  :class:`MultiprocRuntime` places actors in worker
processes (``multiprocessing`` spawn) connected to the parent by localhost
TCP sockets; the parent is the message **router** and the home of
control-plane actors (clients, controllers, GC, load generators).

The wire is the packed binary codec end to end.  A routed frame carries an
envelope the router can parse *without touching the payload*::

    u32 total_len || 0xC6 || kind || u16 dst_len || dst || u16 src_len || src || payload

so a worker→worker message is forwarded as raw bytes — the only processes
that ever decode a payload are the sender and the final receiver.  Combined
with the lazy ``RecordBatch`` frame (:mod:`repro.net.binary_codec`) a batch
crosses the whole deployment without per-record object churn until the
destination maintainer materialises it into the bulk-append fast path.

Semantics versus the single-process runtimes:

* the same :class:`~repro.runtime.actor.Actor` model runs unchanged —
  ``send``, ``set_timer`` (real time), ``on_start``;
* actors are **pickled** into their worker at :meth:`start`; the parent
  keeps shadow copies for introspection, refreshed on demand with
  :meth:`refresh_actors` / :meth:`fetch_actor`;
* delivery order is FIFO per connection, but cross-process interleaving is
  wall-clock real time — *not* deterministic.  The deterministic runtimes
  stay the test substrate; equivalence is anchored by
  ``tests/test_multiproc.py``.

Fault injection (chaos plans, crash/park/revive) is intentionally not
supported here — inject faults on the deterministic runtimes.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import pickle
import selectors
import socket
import struct
import sys
import time
import traceback
from collections import deque
from multiprocessing import get_context
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple
from zlib import crc32

from ..core.errors import ConfigurationError, SessionError
from .actor import Actor

# The codecs live in net/, which never imports this module back.
from ..net.binary_codec import decode_value_binary, encode_value_binary

#: First byte of every multiproc envelope body (binary codec frames start
#: with 0xC5, tagged JSON with ``{`` — the router speaks neither directly).
ENVELOPE_MAGIC = 0xC6

_K_MSG = 0  # routed actor message
_K_CTRL = 1  # parent → worker control (pickled dict)
_K_REPLY = 2  # worker → parent control reply (pickled dict)


def _wall_clock() -> float:
    """This runtime is real time by design, like ``net/aio_runtime``: OS
    processes and sockets do not replay from a seed, so deadlines and the
    timer loop read the monotonic clock rather than a simulated one."""
    return time.monotonic()  # chariots: noqa=CHR003 - real-time runtime


def _format_error(exc: BaseException) -> str:
    """The full traceback of ``exc``, for error replies to the parent."""
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


_U32 = struct.Struct(">I")
_HDR = struct.Struct(">IBBH")  # total_len, magic, kind, dst_len

#: Hard sanity cap per routed frame (matches net/protocol.py).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Name fragments that mark data-plane actors: these are spread across the
#: worker processes by the default placement policy.  Everything else
#: (clients, controllers, gc, supervisors, load generators, sinks) stays in
#: the parent, where synchronous drivers can reach it.
DATA_PLANE_MARKERS: Tuple[str, ...] = (
    "store",
    "maintainer",
    "indexer",
    "batcher",
    "filter",
    "queue",
    "sender",
    "receiver",
)


def default_placement(name: str, workers: int) -> Optional[int]:
    """Spread data-plane actors across workers by a stable name hash."""
    if workers <= 0:
        return None
    lowered = name.lower()
    if any(marker in lowered for marker in DATA_PLANE_MARKERS):
        return crc32(name.encode("utf-8")) % workers
    return None


def _envelope(kind: int, src: str, dst: str, payload: bytes) -> bytes:
    dst_b = dst.encode("utf-8")
    src_b = src.encode("utf-8")
    body_len = 2 + 2 + len(dst_b) + 2 + len(src_b) + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise SessionError(f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES")
    out = bytearray(_HDR.pack(body_len, ENVELOPE_MAGIC, kind, len(dst_b)))
    out += dst_b
    out += len(src_b).to_bytes(2, "big")
    out += src_b
    out += payload
    return bytes(out)


def _parse_envelope(body: memoryview) -> Tuple[int, str, str, memoryview]:
    """(kind, src, dst, payload_view); ``body`` excludes the length prefix."""
    if len(body) < 6 or body[0] != ENVELOPE_MAGIC:
        raise SessionError("malformed multiproc envelope")
    kind = body[1]
    dst_len = (body[2] << 8) | body[3]
    pos = 4 + dst_len
    dst = bytes(body[4:pos]).decode("utf-8")
    src_len = (body[pos] << 8) | body[pos + 1]
    pos += 2
    src = bytes(body[pos : pos + src_len]).decode("utf-8")
    pos += src_len
    return kind, src, dst, body[pos:]


class _TimerHandle:
    """Cancellable handle matching the EventLoop handle surface."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _RealtimeLoop:
    """Monotonic-clock timer heap exposing the ``EventLoop`` subset actors
    use (``now`` + ``schedule``); shared by the parent and the workers."""

    def __init__(self) -> None:
        self._epoch = _wall_clock()
        self._heap: List[Tuple[float, int, _TimerHandle, Callable[[], None]]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        return _wall_clock() - self._epoch

    def schedule(self, delay: float, callback: Callable[[], None]) -> _TimerHandle:
        handle = _TimerHandle()
        heapq.heappush(
            self._heap,
            (self.now + max(0.0, delay), next(self._seq), handle, callback),
        )
        return handle

    def fire_due(self) -> int:
        fired = 0
        while self._heap and self._heap[0][0] <= self.now:
            _at, _seq, handle, callback = heapq.heappop(self._heap)
            if not handle.cancelled:
                callback()
                fired += 1
        return fired

    def seconds_to_next(self, default: float) -> float:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return default
        return max(0.0, self._heap[0][0] - self.now)


class _FrameConn:
    """Non-blocking socket with frame reassembly and an outbound queue."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock
        self.rbuf = bytearray()
        self.outbound: "deque[bytes]" = deque()
        self._out_off = 0
        self.closed = False

    def queue(self, frame: bytes) -> None:
        self.outbound.append(frame)

    @property
    def wants_write(self) -> bool:
        return bool(self.outbound)

    def flush(self) -> None:
        """Write queued frames until the socket would block."""
        while self.outbound:
            head = self.outbound[0]
            try:
                sent = self.sock.send(
                    memoryview(head)[self._out_off :] if self._out_off else head
                )
            except BlockingIOError:
                return
            except (BrokenPipeError, ConnectionResetError, OSError):
                # Peer hung up (e.g. a worker that already acked its stop);
                # drop the backlog — disconnect detection happens on read.
                self.closed = True
                self.outbound.clear()
                self._out_off = 0
                return
            self._out_off += sent
            if self._out_off >= len(head):
                self.outbound.popleft()
                self._out_off = 0

    #: Per-pass read budget.  Leaving the rest in the kernel buffer closes
    #: the TCP window once it fills, so a sender blasting bulk frames is
    #: throttled to the receiver's processing rate instead of ballooning
    #: ``rbuf`` tens of megabytes ahead of the actors.
    READ_BUDGET = 4 << 20

    def read_frames(self) -> List[bytes]:
        """Read up to :data:`READ_BUDGET` bytes; return complete frames
        (length prefix included)."""
        taken = 0
        try:
            while taken < self.READ_BUDGET:
                chunk = self.sock.recv(1 << 20)
                if not chunk:
                    self.closed = True
                    break
                self.rbuf += chunk
                taken += len(chunk)
                if len(chunk) < (1 << 20):
                    break
        except BlockingIOError:
            pass
        except (ConnectionResetError, OSError):
            self.closed = True
        frames: List[bytes] = []
        buf = self.rbuf
        pos = 0
        while len(buf) - pos >= 4:
            (n,) = _U32.unpack_from(buf, pos)
            if n > MAX_FRAME_BYTES:
                raise SessionError(f"oversized frame announced ({n} bytes)")
            if len(buf) - pos < 4 + n:
                break
            frames.append(bytes(buf[pos : pos + 4 + n]))
            pos += 4 + n
        if pos:
            del buf[:pos]
        return frames

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _strip_runtime(actors: Iterable[Actor]) -> List[Actor]:
    for actor in actors:
        actor.runtime = None
    return list(actors)


class MultiprocRuntime:
    """Actor runtime spanning OS processes; the parent routes messages.

    ``workers=0`` is the inline mode: everything runs in the parent but
    messages still pay the full envelope + binary-codec round trip — the
    fair single-process baseline for the multiproc benchmarks.

    ``placement(name, workers) -> Optional[int]`` decides each pre-start
    actor's home (``None`` = parent); the default spreads data-plane stage
    names across workers.  Actors registered after :meth:`start` always
    live in the parent.
    """

    def __init__(
        self,
        workers: int = 2,
        placement: Optional[Callable[[str, int], Optional[int]]] = None,
        host: str = "127.0.0.1",
    ) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        self.workers = workers
        self.loop = _RealtimeLoop()
        self._placement_fn = placement or default_placement
        self._host = host
        self._actors: Dict[str, Actor] = {}
        self._location: Dict[str, Optional[int]] = {}
        self._started = False
        self._stopped = False
        self._procs: List[Any] = []
        self._conns: List[_FrameConn] = []
        self._selector: Optional[selectors.DefaultSelector] = None
        self._pending_local: "deque[Tuple[str, str, Any]]" = deque()
        self._ctrl_seq = itertools.count(1)
        self._ctrl_replies: Dict[int, Any] = {}
        self._worker_error: Optional[str] = None
        self.messages_routed = 0
        self.bytes_routed = 0

    # -- registry (BaseRuntime-compatible surface) ------------------------ #

    def register(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise ConfigurationError(f"actor name {actor.name!r} already registered")
        actor.runtime = self  # type: ignore[assignment]
        self._actors[actor.name] = actor
        if self._started:
            self._location[actor.name] = None
            actor.on_start()
        return actor

    def register_all(self, actors: Iterable[Actor]) -> List[Actor]:
        return [self.register(actor) for actor in actors]

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def actors(self) -> List[Actor]:
        return list(self._actors.values())

    @property
    def now(self) -> float:
        return self.loop.now

    def location_of(self, name: str) -> Optional[int]:
        """Worker index hosting ``name`` (None = parent)."""
        return self._location.get(name)

    # -- lifecycle -------------------------------------------------------- #

    def start(self) -> "MultiprocRuntime":
        if self._started:
            return self
        self._started = True
        for name in self._actors:
            self._location[name] = (
                self._placement_fn(name, self.workers) if self.workers else None
            )
        if self.workers:
            self._spawn_workers()
            self._ship_actors()
        for name, actor in self._actors.items():
            if self._location[name] is None:
                actor.on_start()
        if self.workers:
            for wid in range(self.workers):
                self._control(wid, {"op": "start"})
        return self

    def _spawn_workers(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, 0))
        listener.listen(self.workers)
        listener.settimeout(30.0)
        port = listener.getsockname()[1]
        ctx = get_context("spawn")
        for wid in range(self.workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self._host, port),
                daemon=True,
                name=f"repro-mp-worker-{wid}",
            )
            proc.start()
            self._procs.append(proc)
        conns: Dict[int, _FrameConn] = {}
        try:
            while len(conns) < self.workers:
                sock, _addr = listener.accept()
                sock.settimeout(30.0)
                hello = _read_one_frame_blocking(sock)
                kind, _src, _dst, payload = _parse_envelope(memoryview(hello)[4:])
                if kind != _K_REPLY:
                    raise SessionError("bad worker handshake")
                wid = pickle.loads(bytes(payload))["hello"]
                conns[wid] = _FrameConn(sock)
        finally:
            listener.close()
        self._conns = [conns[wid] for wid in range(self.workers)]
        self._selector = selectors.DefaultSelector()
        for conn in self._conns:
            self._selector.register(conn.sock, selectors.EVENT_READ, conn)

    def _ship_actors(self) -> None:
        by_worker: Dict[int, List[Actor]] = {}
        for name, actor in self._actors.items():
            wid = self._location[name]
            if wid is not None:
                by_worker.setdefault(wid, []).append(actor)
        for wid in range(self.workers):
            group = by_worker.get(wid, [])
            # One pickle per worker keeps objects shared between co-located
            # actors (ownership plans, filter maps) shared after transfer.
            blob = pickle.dumps(_strip_runtime(group), protocol=pickle.HIGHEST_PROTOCOL)
            self._control(wid, {"op": "load", "actors": blob})
            for actor in group:  # parent keeps shadows for introspection
                actor.runtime = self  # type: ignore[assignment]

    def stop(self) -> None:
        """Shut workers down and join their processes (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for wid, conn in enumerate(self._conns):
            if conn.closed:
                continue
            try:
                self._control(wid, {"op": "stop"}, timeout=5.0)
            except SessionError:
                pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._conns = []
        if self._selector is not None:
            self._selector.close()
            self._selector = None

    # -- messaging --------------------------------------------------------- #

    def send(self, src: str, dst: str, message: Any) -> None:
        wid = self._location.get(dst, None) if self._started else None
        if wid is None:
            if dst not in self._actors:
                raise ConfigurationError(
                    f"message from {src!r} to unknown actor {dst!r}"
                )
            self._pending_local.append((src, dst, message))
            return
        self._queue_to_worker(wid, _envelope(_K_MSG, src, dst, encode_value_binary(message)))

    def send_encoded(self, src: str, dst: str, payload: bytes) -> None:
        """Route a pre-encoded binary payload (zero parent-side encode cost).

        The benchmark drivers pre-encode one template ``RecordBatch`` frame
        and resend it; with a remote destination the parent never even
        decodes it.  A parent-local destination decodes lazily, paying the
        same codec cost a worker would — keeping ``workers=0`` honest.
        """
        wid = self._location.get(dst)
        if wid is None:
            if dst not in self._actors:
                raise ConfigurationError(
                    f"message from {src!r} to unknown actor {dst!r}"
                )
            self._pending_local.append((src, dst, decode_value_binary(payload)))
            return
        self._queue_to_worker(wid, _envelope(_K_MSG, src, dst, payload))

    def prepare_encoded(self, src: str, dst: str, payload: bytes) -> bytes:
        """Build the complete wire frame for a message once, for resending.

        :meth:`send_prepared` queues the returned frame by reference — a
        driver replaying one batch shape pays the envelope copy once total
        instead of once per send.
        """
        if dst not in self._location and dst not in self._actors:
            raise ConfigurationError(f"prepare_encoded for unknown actor {dst!r}")
        return _envelope(_K_MSG, src, dst, payload)

    def send_prepared(self, frame: bytes) -> None:
        """Route a frame built by :meth:`prepare_encoded` (zero-copy resend)."""
        _kind, src, dst, payload = _parse_envelope(memoryview(frame)[4:])
        wid = self._location.get(dst)
        if wid is None:
            if dst not in self._actors:
                raise ConfigurationError(f"send_prepared to unknown actor {dst!r}")
            self._pending_local.append((src, dst, decode_value_binary(payload)))
            return
        self._queue_to_worker(wid, frame)

    def _queue_to_worker(self, wid: int, frame: bytes) -> None:
        conn = self._conns[wid]
        conn.queue(frame)
        self.messages_routed += 1
        self.bytes_routed += len(frame)

    # -- control channel ---------------------------------------------------- #

    def _control(self, wid: int, payload: Dict[str, Any], timeout: float = 30.0) -> Any:
        seq = next(self._ctrl_seq)
        payload = dict(payload)
        payload["seq"] = seq
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._conns[wid].queue(_envelope(_K_CTRL, "", "", blob))
        deadline = _wall_clock() + timeout
        while seq not in self._ctrl_replies:
            if _wall_clock() > deadline:
                raise SessionError(f"worker {wid} control timeout: {payload['op']}")
            self._pump(0.05)
        reply = self._ctrl_replies.pop(seq)
        if isinstance(reply, dict) and "error" in reply:
            raise SessionError(f"worker {wid} error: {reply['error']}")
        return reply.get("value") if isinstance(reply, dict) else reply

    def fetch_actor(self, name: str) -> Actor:
        """Pull the authoritative copy of ``name`` (worker state included)."""
        wid = self._location.get(name)
        if wid is None:
            return self._actors[name]
        blob = self._control(wid, {"op": "fetch", "name": name})
        actor: Actor = pickle.loads(blob)[name]
        return actor

    def refresh_actors(self, names: Optional[Iterable[str]] = None) -> None:
        """Replace the parent's shadow copies with fresh worker state.

        After this, parent-side introspection helpers (``all_entries``,
        ``frontiers``, drain checks) read current data — the multiproc
        equivalent of looking directly at a single-process runtime's actors.
        """
        wanted = set(names) if names is not None else None
        by_worker: Dict[int, List[str]] = {}
        for name, wid in self._location.items():
            if wid is None or (wanted is not None and name not in wanted):
                continue
            by_worker.setdefault(wid, []).append(name)
        for wid, group in sorted(by_worker.items()):
            blob = self._control(wid, {"op": "fetch_many", "names": group})
            fetched: Dict[str, Actor] = pickle.loads(blob)
            for name, actor in fetched.items():
                shadow = self._actors.get(name)
                if shadow is not None and hasattr(shadow, "__dict__"):
                    # Transplant state into the existing object so direct
                    # references held by deployments (``pipe.maintainers``)
                    # observe the fresh state too.
                    shadow.__dict__.clear()
                    shadow.__dict__.update(actor.__dict__)
                    shadow.runtime = self  # type: ignore[assignment]
                else:
                    actor.runtime = self  # type: ignore[assignment]
                    self._actors[name] = actor

    def peek(self, name: str, fn: Callable[[Actor], Any]) -> Any:
        """Evaluate ``fn(actor)`` where the actor lives (worker or parent).

        ``fn`` must be a module-level function (picklable by reference) when
        the actor is remote — the cheap way to poll one counter without
        pickling a whole store back.
        """
        wid = self._location.get(name)
        if wid is None:
            return fn(self._actors[name])
        return self._control(wid, {"op": "peek", "name": name, "fn": fn})

    # -- execution ---------------------------------------------------------- #

    def start_if_needed(self) -> None:
        if not self._started:
            self.start()

    def run(self, until_time: Optional[float] = None, max_events: Optional[int] = None) -> float:
        horizon = until_time if until_time is not None else self.now + 0.1
        return self.run_for(max(0.0, horizon - self.now))

    def run_for(self, duration: float) -> float:
        """Pump routing, timers, and local deliveries for ``duration`` s."""
        self.start_if_needed()
        deadline = _wall_clock() + duration
        while True:
            remaining = deadline - _wall_clock()
            if remaining <= 0:
                break
            self._pump(min(0.05, remaining))
        return self.now

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_events: int = 1_000_000,
        timeout: float = 60.0,
    ) -> float:
        """Pump until ``predicate()`` holds (checked between pump slices)."""
        self.start_if_needed()
        deadline = _wall_clock() + timeout
        while not predicate():
            if _wall_clock() > deadline:
                raise SessionError("run_until timed out on the multiproc runtime")
            self._pump(0.02)
        return self.now

    def settle(
        self,
        predicate: Callable[[], bool],
        max_seconds: float = 30.0,
        refresh: Optional[Iterable[str]] = None,
    ) -> bool:
        """Pump until ``predicate()`` holds, refreshing worker shadows first.

        The multiproc analogue of ``AioRuntime.settle``: deployments check
        convergence by reading actor state, which for placed actors lives in
        the workers — each probe pulls it back before evaluating.
        """
        self.start_if_needed()
        deadline = _wall_clock() + max_seconds
        while True:
            self.refresh_actors(refresh)
            if predicate():
                return True
            if _wall_clock() > deadline:
                return False
            self._pump(0.1)

    # -- the pump ----------------------------------------------------------- #

    def _pump(self, max_wait: float) -> None:
        if self._worker_error is not None:
            error, self._worker_error = self._worker_error, None
            raise SessionError(f"worker failure: {error}")
        progressed = self._drain_local()
        progressed += self.loop.fire_due()
        for conn in self._conns:
            if conn.wants_write and not conn.closed:
                conn.flush()
        if self._selector is not None and self._conns:
            wait = 0.0 if (progressed or self._pending_local) else min(
                max_wait, self.loop.seconds_to_next(max_wait)
            )
            # Backlogged conns must wake the select on writability too, or
            # flush progress gates on unrelated inbound traffic (slow and
            # wildly variable under bulk sends).
            for conn in self._conns:
                if conn.closed:
                    continue
                events = selectors.EVENT_READ | (
                    selectors.EVENT_WRITE if conn.wants_write else 0
                )
                self._selector.modify(conn.sock, events, conn)
            for key, mask in self._selector.select(wait):
                conn = key.data
                if mask & selectors.EVENT_READ:
                    for frame in conn.read_frames():
                        self._route_frame(frame)
                if conn.closed and not self._stopped:
                    self._worker_error = "a worker process disconnected"
            for conn in self._conns:
                if conn.wants_write and not conn.closed:
                    conn.flush()
        elif not progressed and not self._pending_local:
            time.sleep(min(max_wait, self.loop.seconds_to_next(max_wait)))

    def _drain_local(self) -> int:
        delivered = 0
        pending = self._pending_local
        actors = self._actors
        while pending:
            src, dst, message = pending.popleft()
            actor = actors.get(dst)
            if actor is not None:
                actor.on_message(src, message)
                delivered += 1
        return delivered

    def _route_frame(self, frame: bytes) -> None:
        kind, src, dst, payload = _parse_envelope(memoryview(frame)[4:])
        if kind == _K_REPLY:
            reply = pickle.loads(bytes(payload))
            if "worker_error" in reply:
                self._worker_error = reply["worker_error"]
            else:
                self._ctrl_replies[reply["seq"]] = reply
            return
        if kind != _K_MSG:
            raise SessionError(f"unexpected frame kind {kind} at the router")
        wid = self._location.get(dst)
        if wid is None:
            if dst not in self._actors:
                raise SessionError(f"route to unknown actor {dst!r}")
            # payload view pins `frame`; lazy batches stay valid after this.
            self._pending_local.append((src, dst, decode_value_binary(payload)))
            return
        # Worker→worker: forward the original frame bytes untouched.
        self._queue_to_worker(wid, frame)

    # -- context manager ----------------------------------------------------- #

    def __enter__(self) -> "MultiprocRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def _read_one_frame_blocking(sock: socket.socket) -> bytes:
    data = b""
    while len(data) < 4:
        chunk = sock.recv(4 - len(data))
        if not chunk:
            raise SessionError("worker hung up during handshake")
        data += chunk
    (n,) = _U32.unpack(data)
    body = bytearray()
    while len(body) < n:
        chunk = sock.recv(n - len(body))
        if not chunk:
            raise SessionError("worker hung up during handshake")
        body += chunk
    return data + bytes(body)


# ------------------------------------------------------------------------- #
# Worker process
# ------------------------------------------------------------------------- #


class _WorkerNode:
    """The runtime surface inside one worker process.

    Local destinations deliver in-process (same semantics as the parent's
    pending queue); everything else is encoded once and sent to the router.
    """

    def __init__(self, worker_id: int, sock: socket.socket) -> None:
        self.worker_id = worker_id
        self.loop = _RealtimeLoop()
        self.conn = _FrameConn(sock)
        self._actors: Dict[str, Actor] = {}
        self._pending: "deque[Tuple[str, str, Any]]" = deque()
        self._started = False
        self._stopping = False

    @property
    def now(self) -> float:
        return self.loop.now

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def register(self, actor: Actor) -> Actor:
        actor.runtime = self  # type: ignore[assignment]
        self._actors[actor.name] = actor
        if self._started:
            actor.on_start()
        return actor

    def send(self, src: str, dst: str, message: Any) -> None:
        if dst in self._actors:
            self._pending.append((src, dst, message))
            return
        self.conn.queue(_envelope(_K_MSG, src, dst, encode_value_binary(message)))

    def _reply(self, payload: Dict[str, Any]) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.conn.queue(_envelope(_K_REPLY, "", "", blob))

    def _handle_control(self, ctrl: Dict[str, Any]) -> None:
        op = ctrl["op"]
        seq = ctrl["seq"]
        try:
            if op == "load":
                for actor in pickle.loads(ctrl["actors"]):
                    self.register(actor)
                self._reply({"seq": seq, "value": None})
            elif op == "start":
                if not self._started:
                    self._started = True
                    for actor in list(self._actors.values()):
                        actor.on_start()
                self._reply({"seq": seq, "value": None})
            elif op == "fetch":
                actor = self._actors[ctrl["name"]]
                self._reply({"seq": seq, "value": self._pickle_detached([actor.name])})
            elif op == "fetch_many":
                self._reply(
                    {"seq": seq, "value": self._pickle_detached(list(ctrl["names"]))}
                )
            elif op == "peek":
                value = ctrl["fn"](self._actors[ctrl["name"]])
                self._reply({"seq": seq, "value": value})
            elif op == "stop":
                self._stopping = True
                self._reply({"seq": seq, "value": None})
            else:
                self._reply({"seq": seq, "error": f"unknown control op {op!r}"})
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            self._reply({"seq": seq, "error": _format_error(exc)})

    def _pickle_detached(self, names: List[str]) -> bytes:
        """Pickle ``{name: actor}`` with runtimes stripped (one blob, so
        objects shared between co-located actors stay shared)."""
        actors = {name: self._actors[name] for name in names}
        saved = {name: actor.runtime for name, actor in actors.items()}
        for actor in actors.values():
            actor.runtime = None
        try:
            return pickle.dumps(actors, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            for name, actor in actors.items():
                actor.runtime = saved[name]

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        actor = self._actors.get(dst)
        if actor is None:
            self._reply({"worker_error": f"worker {self.worker_id} has no actor {dst!r}"})
            return
        actor.on_message(src, message)

    def run(self) -> None:
        selector = selectors.DefaultSelector()
        selector.register(self.conn.sock, selectors.EVENT_READ, self.conn)
        try:
            while not self._stopping:
                while self._pending:
                    src, dst, message = self._pending.popleft()
                    self._dispatch_safely(src, dst, message)
                self.loop.fire_due()
                if self.conn.wants_write:
                    self.conn.flush()
                wait = (
                    0.0
                    if self._pending
                    else min(0.05, self.loop.seconds_to_next(0.05))
                )
                selector.modify(
                    self.conn.sock,
                    selectors.EVENT_READ
                    | (selectors.EVENT_WRITE if self.conn.wants_write else 0),
                    self.conn,
                )
                for _key, mask in selector.select(wait):
                    if mask & selectors.EVENT_READ:
                        for frame in self.conn.read_frames():
                            self._on_frame(frame)
                if self.conn.closed:
                    break
                if self.conn.wants_write:
                    self.conn.flush()
            # Final flush so stop-acks and late sends reach the parent.
            deadline = _wall_clock() + 2.0
            while self.conn.wants_write and _wall_clock() < deadline:
                self.conn.flush()
        finally:
            selector.close()
            self.conn.close()

    def _on_frame(self, frame: bytes) -> None:
        kind, src, dst, payload = _parse_envelope(memoryview(frame)[4:])
        if kind == _K_CTRL:
            self._handle_control(pickle.loads(bytes(payload)))
            return
        if kind != _K_MSG:
            self._reply({"worker_error": f"worker got frame kind {kind}"})
            return
        # `payload` views `frame` (immutable bytes), so lazy RecordBatch
        # views decoded here stay valid for the life of the batch.
        self._dispatch_safely(src, dst, decode_value_binary(payload))

    def _dispatch_safely(self, src: str, dst: str, message: Any) -> None:
        try:
            self._deliver(src, dst, message)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            self._reply(
                {
                    "worker_error": (
                        f"worker {self.worker_id} dispatch to {dst!r} failed:\n"
                        + _format_error(exc)
                    )
                }
            )


def _worker_main(worker_id: int, host: str, port: int) -> None:
    # Workers are ingest loops: they allocate records at a high rate and
    # most survive into long-lived log storage, the worst case for CPython's
    # default generational thresholds (every young collection promotes, and
    # full collections rescan the ever-growing store).  Records and frames
    # are acyclic, so raising the thresholds trades nothing but peak cycle
    # latency for a large steady-state throughput win.
    gc.set_threshold(200_000, 100, 100)
    sock = socket.create_connection((host, port))
    hello = pickle.dumps({"hello": worker_id}, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_envelope(_K_REPLY, "", "", hello))
    node = _WorkerNode(worker_id, sock)
    try:
        node.run()
    except Exception:  # noqa: BLE001 - last-ditch crash report
        sys.stderr.write(
            f"[repro-mp-worker-{worker_id}] crashed:\n{traceback.format_exc()}"
        )
        sys.stderr.flush()
        raise
