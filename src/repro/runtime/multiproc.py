"""Multi-process runtime: one OS process per stage group, sockets between.

Every other runtime in this repo hosts all actors inside one Python
process, so the GIL caps pipeline throughput no matter how many stages a
deployment declares.  :class:`MultiprocRuntime` places actors in worker
processes (``multiprocessing`` spawn) connected to the parent by localhost
TCP sockets; the parent is the message **router** and the home of
control-plane actors (clients, controllers, GC, load generators).

The wire is the packed binary codec end to end.  A routed frame carries an
envelope the router can parse *without touching the payload*::

    u32 total_len || 0xC6 || kind || u32 seq || u16 dst_len || dst ||
    u16 src_len || src || payload

so a worker→worker message is forwarded as raw bytes — the only processes
that ever decode a payload are the sender and the final receiver.  Combined
with the lazy ``RecordBatch`` frame (:mod:`repro.net.binary_codec`) a batch
crosses the whole deployment without per-record object churn until the
destination maintainer materialises it into the bulk-append fast path.

Semantics versus the single-process runtimes:

* the same :class:`~repro.runtime.actor.Actor` model runs unchanged —
  ``send``, ``set_timer`` (real time), ``on_start``;
* actors are **pickled** into their worker at :meth:`start`; the parent
  keeps shadow copies for introspection, refreshed on demand with
  :meth:`refresh_actors` / :meth:`fetch_actor`;
* delivery order is FIFO per connection, but cross-process interleaving is
  wall-clock real time — *not* deterministic.  The deterministic runtimes
  stay the test substrate; equivalence is anchored by
  ``tests/test_multiproc.py``.

Process-level fault tolerance
-----------------------------

Registering a :class:`~repro.runtime.supervisor.ProcessSupervisor` switches
the runtime into **supervised** mode, which makes every worker individually
recoverable after a real SIGKILL (or hang), at the cost of one frame copy
per routed frame and a periodic state snapshot per worker:

* the envelope ``seq`` field carries a parent-assigned per-worker delivery
  sequence number (parent→worker) and a worker-assigned emission id
  (worker→parent); unsupervised traffic leaves it zero and keeps the
  zero-copy forwarding path byte-identical to before;
* workers follow an **output-commit** discipline: outbound frames are held
  until the next snapshot (actor state + held outputs + input ack) has been
  queued to the parent, so any frame that escaped a worker is provably
  captured by some snapshot — after a crash the parent restores the latest
  snapshot, re-injects its held outputs through an emission-id dedup, and
  retransmits every unacknowledged input frame from its per-worker buffer;
* journal-backed actors (log maintainers) are excluded from snapshots and
  rebuilt parent-side from their :class:`~repro.flstore.journal.FileJournal`
  via the supervisor's recovery factories — their writes are durable the
  moment they happen and replay is idempotent;
* crash/hang detection is socket EOF + exit-code reaping + heartbeat
  staleness; respawn is driven by the shared
  :class:`~repro.core.retry.RetryPolicy` and a per-worker
  :class:`~repro.core.retry.CircuitBreaker`;
* :meth:`restart_worker` is the planned (elasticity) path: it drains the
  worker's queues to a clean snapshot first, and when it cannot, the loss
  is bounded and counted in :attr:`loss_accounting`.

Process-level chaos (:class:`~repro.chaos.procchaos.ProcChaos`) plugs into
the same machinery: scheduled SIGKILLs of named workers, plus seeded
drop/delay of raw frames at the parent's forwarding layer.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import pickle
import selectors
import socket
import struct
import sys
import time
import traceback
from collections import Counter, deque
from multiprocessing import get_context
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)
from zlib import crc32

from ..core.errors import ConfigurationError, SessionError
from ..core.retry import CircuitBreaker
from .actor import Actor
from .supervisor import ProcessSupervisor

# The codecs live in net/, which never imports this module back.
from ..net.binary_codec import decode_value_binary, encode_value_binary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos.procchaos import ProcChaos

#: First byte of every multiproc envelope body (binary codec frames start
#: with 0xC5, tagged JSON with ``{`` — the router speaks neither directly).
ENVELOPE_MAGIC = 0xC6

_K_MSG = 0  # routed actor message
_K_CTRL = 1  # parent → worker control (pickled dict)
_K_REPLY = 2  # worker → parent control reply (pickled dict)


def _wall_clock() -> float:
    """This runtime is real time by design, like ``net/aio_runtime``: OS
    processes and sockets do not replay from a seed, so deadlines and the
    timer loop read the monotonic clock rather than a simulated one."""
    return time.monotonic()  # chariots: noqa=CHR003 - real-time runtime


def _format_error(exc: BaseException) -> str:
    """The full traceback of ``exc``, for error replies to the parent."""
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


_U32 = struct.Struct(">I")
_HDR = struct.Struct(">IBBIH")  # total_len, magic, kind, seq, dst_len

#: Byte offset of the envelope ``seq`` field within a full frame (i.e. the
#: u32 length prefix, then magic + kind).  Supervised forwarding patches a
#: per-worker delivery sequence number in place at this offset.
_SEQ_OFF = 6

#: Hard sanity cap per routed frame (matches net/protocol.py).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Name fragments that mark data-plane actors: these are spread across the
#: worker processes by the default placement policy.  Everything else
#: (clients, controllers, gc, supervisors, load generators, sinks) stays in
#: the parent, where synchronous drivers can reach it.
DATA_PLANE_MARKERS: Tuple[str, ...] = (
    "store",
    "maintainer",
    "indexer",
    "batcher",
    "filter",
    "queue",
    "sender",
    "receiver",
)


def default_placement(name: str, workers: int) -> Optional[int]:
    """Spread data-plane actors across workers by a stable name hash."""
    if workers <= 0:
        return None
    lowered = name.lower()
    if any(marker in lowered for marker in DATA_PLANE_MARKERS):
        return crc32(name.encode("utf-8")) % workers
    return None


def _envelope(kind: int, src: str, dst: str, payload: bytes, seq: int = 0) -> bytes:
    dst_b = dst.encode("utf-8")
    src_b = src.encode("utf-8")
    body_len = 2 + 4 + 2 + len(dst_b) + 2 + len(src_b) + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise SessionError(f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES")
    out = bytearray(_HDR.pack(body_len, ENVELOPE_MAGIC, kind, seq, len(dst_b)))
    out += dst_b
    out += len(src_b).to_bytes(2, "big")
    out += src_b
    out += payload
    return bytes(out)


def _parse_envelope(body: memoryview) -> Tuple[int, int, str, str, memoryview]:
    """(kind, seq, src, dst, payload_view); ``body`` excludes the length
    prefix.  ``seq`` is 0 for unsequenced (unsupervised) frames."""
    if len(body) < 10 or body[0] != ENVELOPE_MAGIC:
        raise SessionError("malformed multiproc envelope")
    kind = body[1]
    seq = (body[2] << 24) | (body[3] << 16) | (body[4] << 8) | body[5]
    dst_len = (body[6] << 8) | body[7]
    pos = 8 + dst_len
    dst = bytes(body[8:pos]).decode("utf-8")
    src_len = (body[pos] << 8) | body[pos + 1]
    pos += 2
    src = bytes(body[pos : pos + src_len]).decode("utf-8")
    pos += src_len
    return kind, seq, src, dst, body[pos:]


class _TimerHandle:
    """Cancellable handle matching the EventLoop handle surface."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _RealtimeLoop:
    """Monotonic-clock timer heap exposing the ``EventLoop`` subset actors
    use (``now`` + ``schedule``); shared by the parent and the workers."""

    def __init__(self) -> None:
        self._epoch = _wall_clock()
        self._heap: List[Tuple[float, int, _TimerHandle, Callable[[], None]]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        return _wall_clock() - self._epoch

    def schedule(self, delay: float, callback: Callable[[], None]) -> _TimerHandle:
        handle = _TimerHandle()
        heapq.heappush(
            self._heap,
            (self.now + max(0.0, delay), next(self._seq), handle, callback),
        )
        return handle

    def fire_due(self) -> int:
        fired = 0
        while self._heap and self._heap[0][0] <= self.now:
            _at, _seq, handle, callback = heapq.heappop(self._heap)
            if not handle.cancelled:
                callback()
                fired += 1
        return fired

    def seconds_to_next(self, default: float) -> float:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return default
        return max(0.0, self._heap[0][0] - self.now)


class _FrameConn:
    """Non-blocking socket with frame reassembly and an outbound queue."""

    def __init__(self, sock: socket.socket, wid: int = -1) -> None:
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock
        #: Worker index on the parent side (-1 inside workers) — lets the
        #: router attribute inbound frames to their source worker.
        self.wid = wid
        self.rbuf = bytearray()
        self.outbound: "deque[bytes]" = deque()
        self._out_off = 0
        self.closed = False

    def queue(self, frame: bytes) -> None:
        self.outbound.append(frame)

    @property
    def wants_write(self) -> bool:
        return bool(self.outbound)

    def flush(self) -> None:
        """Write queued frames until the socket would block."""
        while self.outbound:
            head = self.outbound[0]
            try:
                sent = self.sock.send(
                    memoryview(head)[self._out_off :] if self._out_off else head
                )
            except BlockingIOError:
                return
            except (BrokenPipeError, ConnectionResetError, OSError):
                # Peer hung up (e.g. a worker that already acked its stop);
                # drop the backlog — disconnect detection happens on read.
                self.closed = True
                self.outbound.clear()
                self._out_off = 0
                return
            self._out_off += sent
            if self._out_off >= len(head):
                self.outbound.popleft()
                self._out_off = 0

    #: Per-pass read budget.  Leaving the rest in the kernel buffer closes
    #: the TCP window once it fills, so a sender blasting bulk frames is
    #: throttled to the receiver's processing rate instead of ballooning
    #: ``rbuf`` tens of megabytes ahead of the actors.
    READ_BUDGET = 4 << 20

    def read_frames(self) -> List[bytes]:
        """Read up to :data:`READ_BUDGET` bytes; return complete frames
        (length prefix included)."""
        taken = 0
        try:
            while taken < self.READ_BUDGET:
                chunk = self.sock.recv(1 << 20)
                if not chunk:
                    self.closed = True
                    break
                self.rbuf += chunk
                taken += len(chunk)
                if len(chunk) < (1 << 20):
                    break
        except BlockingIOError:
            pass
        except (ConnectionResetError, OSError):
            self.closed = True
        frames: List[bytes] = []
        buf = self.rbuf
        pos = 0
        while len(buf) - pos >= 4:
            (n,) = _U32.unpack_from(buf, pos)
            if n > MAX_FRAME_BYTES:
                raise SessionError(f"oversized frame announced ({n} bytes)")
            if len(buf) - pos < 4 + n:
                break
            frames.append(bytes(buf[pos : pos + 4 + n]))
            pos += 4 + n
        if pos:
            del buf[:pos]
        return frames

    def close(self) -> None:
        self.closed = True
        try:
            self.sock.close()
        except OSError:
            pass


def _strip_runtime(actors: Iterable[Actor]) -> List[Actor]:
    for actor in actors:
        actor.runtime = None
    return list(actors)


class _WorkerSlot:
    """Parent-side supervision state for one worker process."""

    __slots__ = (
        "delivery_seq",
        "unacked",
        "unacked_bytes",
        "acked",
        "emission_high",
        "snapshot",
        "last_heartbeat",
        "failed",
        "buffering",
        "down_since",
        "down_reason",
        "epoch",
    )

    def __init__(self) -> None:
        #: Last delivery sequence number assigned to a frame for this worker.
        self.delivery_seq = 0
        #: (seq, frame) pairs newer than the last snapshot-acked input.
        self.unacked: "deque[Tuple[int, bytes]]" = deque()
        self.unacked_bytes = 0
        #: Highest input seq covered by a received snapshot.
        self.acked = 0
        #: Highest emission id seen from this worker (duplicate filter).
        self.emission_high = 0
        #: Latest snapshot: {"ack", "emission", "state", "held"} or None.
        self.snapshot: Optional[Dict[str, Any]] = None
        self.last_heartbeat = 0.0
        #: True between failure detection and the start of respawn controls.
        self.failed = False
        #: True while outbound frames must buffer instead of hitting the
        #: socket (failure window + respawn, until retransmission is queued).
        self.buffering = False
        self.down_since: Optional[float] = None
        self.down_reason = ""
        #: Bumped per respawn; in-flight control waits from the previous
        #: connection fail fast instead of timing out.
        self.epoch = 0


class MultiprocRuntime:
    """Actor runtime spanning OS processes; the parent routes messages.

    ``workers=0`` is the inline mode: everything runs in the parent but
    messages still pay the full envelope + binary-codec round trip — the
    fair single-process baseline for the multiproc benchmarks.

    ``placement(name, workers) -> Optional[int]`` decides each pre-start
    actor's home (``None`` = parent); the default spreads data-plane stage
    names across workers.  Actors registered after :meth:`start` always
    live in the parent.

    ``chaos`` accepts a :class:`~repro.chaos.procchaos.ProcChaos`: its
    scheduled kills SIGKILL worker processes at the given times, and its
    frame faults drop/delay raw frames at the forwarding layer.  Surviving
    kills requires a registered
    :class:`~repro.runtime.supervisor.ProcessSupervisor` (see the module
    docstring); without one a killed worker surfaces as a
    :class:`SessionError`, exactly like any other worker death.
    """

    def __init__(
        self,
        workers: int = 2,
        placement: Optional[Callable[[str, int], Optional[int]]] = None,
        host: str = "127.0.0.1",
        chaos: Optional["ProcChaos"] = None,
        retransmit_limit_bytes: int = 64 << 20,
    ) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        self.workers = workers
        self.loop = _RealtimeLoop()
        self._placement_fn = placement or default_placement
        self._host = host
        self._chaos = chaos
        #: Per-worker cap on buffered-for-retransmission bytes; overflow
        #: drops the oldest frames and accounts them in
        #: :attr:`loss_accounting` (bounded loss instead of unbounded RAM).
        self.retransmit_limit_bytes = retransmit_limit_bytes
        self._actors: Dict[str, Actor] = {}
        self._location: Dict[str, Optional[int]] = {}
        self._started = False
        self._stopped = False
        self._procs: List[Any] = []
        self._conns: List[_FrameConn] = []
        self._selector: Optional[selectors.DefaultSelector] = None
        self._pending_local: "deque[Tuple[str, str, Any]]" = deque()
        self._ctrl_seq = itertools.count(1)
        self._ctrl_replies: Dict[int, Any] = {}
        self._worker_error: Optional[str] = None
        self.messages_routed = 0
        self.bytes_routed = 0
        # -- supervision state (populated when a ProcessSupervisor is
        #    registered; otherwise zero-cost) -------------------------------
        self._supervisor: Optional[ProcessSupervisor] = None
        self._supervised = False
        self._slots: List[_WorkerSlot] = []
        self._breakers: List[CircuitBreaker] = []
        self._initial_blobs: Dict[int, bytes] = {}
        self._recovering = False
        #: Frames/bytes that supervision could not protect: chaos drops,
        #: retransmit-buffer overflow, drain timeouts, replay gaps.
        self.loss_accounting: Counter[str] = Counter()

    # -- registry (BaseRuntime-compatible surface) ------------------------ #

    def register(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise ConfigurationError(f"actor name {actor.name!r} already registered")
        actor.runtime = self  # type: ignore[assignment]
        self._actors[actor.name] = actor
        if self._started:
            self._location[actor.name] = None
            actor.on_start()
        return actor

    def register_all(self, actors: Iterable[Actor]) -> List[Actor]:
        return [self.register(actor) for actor in actors]

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def actors(self) -> List[Actor]:
        return list(self._actors.values())

    @property
    def now(self) -> float:
        return self.loop.now

    def location_of(self, name: str) -> Optional[int]:
        """Worker index hosting ``name`` (None = parent)."""
        return self._location.get(name)

    # -- lifecycle -------------------------------------------------------- #

    def start(self) -> "MultiprocRuntime":
        if self._started:
            return self
        self._started = True
        for name in self._actors:
            self._location[name] = (
                self._placement_fn(name, self.workers) if self.workers else None
            )
        if self.workers:
            self._supervisor = next(
                (
                    actor
                    for actor in self._actors.values()
                    if isinstance(actor, ProcessSupervisor)
                ),
                None,
            )
            self._supervised = self._supervisor is not None
            self._slots = [_WorkerSlot() for _ in range(self.workers)]
            if self._supervised:
                sup = self._supervisor
                assert sup is not None
                self._breakers = [
                    CircuitBreaker(sup.breaker_threshold, sup.breaker_cooldown)
                    for _ in range(self.workers)
                ]
            self._spawn_workers()
            self._ship_actors()
            if self._supervised:
                for wid in range(self.workers):
                    self._control(wid, self._configure_payload(wid, 0, 0))
        for name, actor in self._actors.items():
            if self._location[name] is None:
                actor.on_start()
        if self.workers:
            for wid in range(self.workers):
                self._control(wid, {"op": "start"})
        if self._chaos is not None and self.workers:
            self._schedule_kills()
        return self

    def _configure_payload(
        self, wid: int, delivered: int, emission: int
    ) -> Dict[str, Any]:
        sup = self._supervisor
        assert sup is not None
        journaled = sorted(
            name
            for name, home in self._location.items()
            if home == wid and sup.is_journaled(name)
        )
        return {
            "op": "configure",
            "heartbeat_interval": sup.heartbeat_interval,
            "snapshot_interval": sup.snapshot_interval,
            "journaled": journaled,
            "delivered": delivered,
            "emission": emission,
        }

    def _schedule_kills(self) -> None:
        chaos = self._chaos
        assert chaos is not None
        for target, at in chaos.kill_schedule():
            wid = self._resolve_worker(target)
            self.loop.schedule(at, lambda w=wid: self._chaos_kill(w))

    def _resolve_worker(self, target: Any) -> int:
        """Map a kill target (worker index or actor name) to a worker id."""
        if isinstance(target, int):
            if not 0 <= target < self.workers:
                raise ConfigurationError(
                    f"kill target worker {target} out of range (workers={self.workers})"
                )
            return target
        wid = self._location.get(str(target))
        if wid is None:
            raise ConfigurationError(
                f"kill target {target!r} is not placed on a worker"
            )
        return wid

    def _chaos_kill(self, wid: int) -> None:
        proc = self._procs[wid] if wid < len(self._procs) else None
        if proc is None or not proc.is_alive():
            return
        proc.kill()
        if self._chaos is not None:
            self._chaos.stats["workers_killed"] += 1

    def _spawn_workers(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, 0))
        listener.listen(self.workers)
        listener.settimeout(30.0)
        port = listener.getsockname()[1]
        ctx = get_context("spawn")
        for wid in range(self.workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self._host, port),
                daemon=True,
                name=f"repro-mp-worker-{wid}",
            )
            proc.start()
            self._procs.append(proc)
        conns: Dict[int, _FrameConn] = {}
        try:
            while len(conns) < self.workers:
                sock, _addr = listener.accept()
                sock.settimeout(30.0)
                hello = _read_one_frame_blocking(sock)
                kind, _seq, _src, _dst, payload = _parse_envelope(
                    memoryview(hello)[4:]
                )
                if kind != _K_REPLY:
                    raise SessionError("bad worker handshake")
                wid = pickle.loads(bytes(payload))["hello"]
                conns[wid] = _FrameConn(sock, wid=wid)
        finally:
            listener.close()
        self._conns = [conns[wid] for wid in range(self.workers)]
        self._selector = selectors.DefaultSelector()
        now = _wall_clock()
        for wid, conn in enumerate(self._conns):
            self._selector.register(conn.sock, selectors.EVENT_READ, conn)
            if self._slots:
                self._slots[wid].last_heartbeat = now

    def _spawn_one(self, wid: int) -> Tuple[Any, _FrameConn]:
        """Spawn and handshake a single replacement worker process."""
        sup = self._supervisor
        timeout = sup.spawn_timeout if sup is not None else 10.0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, 0))
        listener.listen(1)
        listener.settimeout(timeout)
        port = listener.getsockname()[1]
        ctx = get_context("spawn")
        proc = ctx.Process(
            target=_worker_main,
            args=(wid, self._host, port),
            daemon=True,
            name=f"repro-mp-worker-{wid}",
        )
        proc.start()
        try:
            sock, _addr = listener.accept()
            sock.settimeout(timeout)
            hello = _read_one_frame_blocking(sock, timeout=timeout)
            kind, _seq, _src, _dst, payload = _parse_envelope(memoryview(hello)[4:])
            if kind != _K_REPLY or pickle.loads(bytes(payload)).get("hello") != wid:
                raise SessionError(f"bad handshake from respawned worker {wid}")
        except (socket.timeout, OSError) as exc:
            proc.kill()
            proc.join(1.0)
            raise SessionError(f"worker {wid} respawn handshake failed: {exc!r}")
        finally:
            listener.close()
        return proc, _FrameConn(sock, wid=wid)

    def _ship_actors(self) -> None:
        by_worker: Dict[int, List[Actor]] = {}
        for name, actor in self._actors.items():
            wid = self._location[name]
            if wid is not None:
                by_worker.setdefault(wid, []).append(actor)
        for wid in range(self.workers):
            group = by_worker.get(wid, [])
            # One pickle per worker keeps objects shared between co-located
            # actors (ownership plans, filter maps) shared after transfer.
            blob = pickle.dumps(_strip_runtime(group), protocol=pickle.HIGHEST_PROTOCOL)
            if self._supervised:
                # Kept so a worker that dies before its first snapshot can
                # still be restored to its initial shipped state.
                self._initial_blobs[wid] = blob
            self._control(wid, {"op": "load", "actors": blob})
            for actor in group:  # parent keeps shadows for introspection
                actor.runtime = self  # type: ignore[assignment]

    def stop(self) -> None:
        """Shut workers down, then *always* reap children and close every
        parent-side socket — even when the graceful control round fails
        (idempotent; a worker that died early must not leak its socket or
        linger as a zombie)."""
        if self._stopped:
            return
        self._stopped = True
        try:
            for wid, conn in enumerate(self._conns):
                if conn.closed:
                    continue
                if self._supervised and self._slots[wid].failed:
                    continue
                try:
                    self._control(wid, {"op": "stop"}, timeout=5.0)
                except SessionError:
                    pass
        finally:
            for conn in self._conns:
                conn.close()
            self._conns = []
            for proc in self._procs:
                try:
                    proc.join(timeout=5.0)
                    if proc.is_alive():
                        proc.kill()
                        proc.join(timeout=5.0)
                except (OSError, ValueError):
                    pass  # already reaped / closed by multiprocessing
            self._procs = []
            if self._selector is not None:
                try:
                    self._selector.close()
                except OSError:
                    pass
                self._selector = None

    # -- messaging --------------------------------------------------------- #

    def send(self, src: str, dst: str, message: Any) -> None:
        wid = self._location.get(dst, None) if self._started else None
        if wid is None:
            if dst not in self._actors:
                raise ConfigurationError(
                    f"message from {src!r} to unknown actor {dst!r}"
                )
            self._pending_local.append((src, dst, message))
            return
        self._queue_to_worker(wid, _envelope(_K_MSG, src, dst, encode_value_binary(message)))

    def send_encoded(self, src: str, dst: str, payload: bytes) -> None:
        """Route a pre-encoded binary payload (zero parent-side encode cost).

        The benchmark drivers pre-encode one template ``RecordBatch`` frame
        and resend it; with a remote destination the parent never even
        decodes it.  A parent-local destination decodes lazily, paying the
        same codec cost a worker would — keeping ``workers=0`` honest.
        """
        wid = self._location.get(dst)
        if wid is None:
            if dst not in self._actors:
                raise ConfigurationError(
                    f"message from {src!r} to unknown actor {dst!r}"
                )
            self._pending_local.append((src, dst, decode_value_binary(payload)))
            return
        self._queue_to_worker(wid, _envelope(_K_MSG, src, dst, payload))

    def prepare_encoded(self, src: str, dst: str, payload: bytes) -> bytes:
        """Build the complete wire frame for a message once, for resending.

        :meth:`send_prepared` queues the returned frame by reference — a
        driver replaying one batch shape pays the envelope copy once total
        instead of once per send.
        """
        if dst not in self._location and dst not in self._actors:
            raise ConfigurationError(f"prepare_encoded for unknown actor {dst!r}")
        return _envelope(_K_MSG, src, dst, payload)

    def send_prepared(self, frame: bytes) -> None:
        """Route a frame built by :meth:`prepare_encoded` (zero-copy resend)."""
        _kind, _seq, src, dst, payload = _parse_envelope(memoryview(frame)[4:])
        wid = self._location.get(dst)
        if wid is None:
            if dst not in self._actors:
                raise ConfigurationError(f"send_prepared to unknown actor {dst!r}")
            self._pending_local.append((src, dst, decode_value_binary(payload)))
            return
        self._queue_to_worker(wid, frame)

    def _queue_to_worker(self, wid: int, frame: bytes) -> None:
        """Forwarding layer: chaos interception happens here, *before* a
        delivery sequence number is assigned, so a delayed frame re-enters
        the normal path and per-worker delivery stays in order."""
        if self._chaos is not None:
            action, delay = self._chaos.decide_frame()
            if action == "drop":
                self.loss_accounting["chaos_dropped_frames"] += 1
                return
            if action == "delay":
                self.loop.schedule(
                    delay, lambda w=wid, f=frame: self._admit_frame(w, f)
                )
                return
        self._admit_frame(wid, frame)

    def _admit_frame(self, wid: int, frame: bytes) -> None:
        if self._supervised:
            slot = self._slots[wid]
            slot.delivery_seq += 1
            patched = bytearray(frame)
            _U32.pack_into(patched, _SEQ_OFF, slot.delivery_seq)
            frame = bytes(patched)
            slot.unacked.append((slot.delivery_seq, frame))
            slot.unacked_bytes += len(frame)
            while slot.unacked_bytes > self.retransmit_limit_bytes and slot.unacked:
                _d, old = slot.unacked.popleft()
                slot.unacked_bytes -= len(old)
                self.loss_accounting["retransmit_overflow_frames"] += 1
                self.loss_accounting["retransmit_overflow_bytes"] += len(old)
            if not slot.buffering:
                self._conns[wid].queue(frame)
        else:
            self._conns[wid].queue(frame)
        self.messages_routed += 1
        self.bytes_routed += len(frame)

    # -- control channel ---------------------------------------------------- #

    def _control(self, wid: int, payload: Dict[str, Any], timeout: float = 30.0) -> Any:
        slot = self._slots[wid] if self._supervised else None
        epoch = slot.epoch if slot is not None else 0
        seq = next(self._ctrl_seq)
        payload = dict(payload)
        payload["seq"] = seq
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._conns[wid].queue(_envelope(_K_CTRL, "", "", blob))
        deadline = _wall_clock() + timeout
        while seq not in self._ctrl_replies:
            if slot is not None and (slot.failed or slot.epoch != epoch):
                # The worker died (or was respawned) under this request; the
                # reply will never arrive — fail fast so callers can skip or
                # retry instead of hanging out the full timeout.
                raise SessionError(
                    f"worker {wid} went down awaiting {payload['op']!r} reply"
                )
            if _wall_clock() > deadline:
                raise SessionError(f"worker {wid} control timeout: {payload['op']}")
            self._pump(0.05)
        reply = self._ctrl_replies.pop(seq)
        if isinstance(reply, dict) and "error" in reply:
            raise SessionError(f"worker {wid} error: {reply['error']}")
        return reply.get("value") if isinstance(reply, dict) else reply

    def fetch_actor(self, name: str) -> Actor:
        """Pull the authoritative copy of ``name`` (worker state included)."""
        wid = self._location.get(name)
        if wid is None:
            return self._actors[name]
        blob = self._control(wid, {"op": "fetch", "name": name})
        actor: Actor = pickle.loads(blob)[name]
        return actor

    def refresh_actors(self, names: Optional[Iterable[str]] = None) -> None:
        """Replace the parent's shadow copies with fresh worker state.

        After this, parent-side introspection helpers (``all_entries``,
        ``frontiers``, drain checks) read current data — the multiproc
        equivalent of looking directly at a single-process runtime's actors.
        Under supervision a failed worker is skipped (its shadows stay stale
        until recovery) instead of failing the whole refresh.
        """
        wanted = set(names) if names is not None else None
        by_worker: Dict[int, List[str]] = {}
        for name, wid in self._location.items():
            if wid is None or (wanted is not None and name not in wanted):
                continue
            by_worker.setdefault(wid, []).append(name)
        for wid, group in sorted(by_worker.items()):
            if self._supervised and self._slots[wid].failed:
                continue
            try:
                blob = self._control(wid, {"op": "fetch_many", "names": group})
            except SessionError:
                if not self._supervised:
                    raise
                continue  # died mid-fetch; recovery will catch it
            fetched: Dict[str, Actor] = pickle.loads(blob)
            for name, actor in fetched.items():
                shadow = self._actors.get(name)
                if shadow is not None and hasattr(shadow, "__dict__"):
                    # Transplant state into the existing object so direct
                    # references held by deployments (``pipe.maintainers``)
                    # observe the fresh state too.
                    shadow.__dict__.clear()
                    shadow.__dict__.update(actor.__dict__)
                    shadow.runtime = self  # type: ignore[assignment]
                else:
                    actor.runtime = self  # type: ignore[assignment]
                    self._actors[name] = actor

    def peek(self, name: str, fn: Callable[[Actor], Any]) -> Any:
        """Evaluate ``fn(actor)`` where the actor lives (worker or parent).

        ``fn`` must be a module-level function (picklable by reference) when
        the actor is remote — the cheap way to poll one counter without
        pickling a whole store back.
        """
        wid = self._location.get(name)
        if wid is None:
            return fn(self._actors[name])
        return self._control(wid, {"op": "peek", "name": name, "fn": fn})

    # -- supervision: detection, respawn, drain ----------------------------- #

    def check_workers(self) -> int:
        """Detect dead/hung workers and respawn them; returns respawns.

        Called by :class:`~repro.runtime.supervisor.ProcessSupervisor` on
        its sweep timer (which fires from the parent pump), and safe to call
        directly from drivers.
        """
        if not self._supervised or not self._started or self._stopped:
            return 0
        if self._recovering:
            return 0  # re-entered from a nested pump during a respawn
        self._detect_failures()
        restarted = 0
        self._recovering = True
        try:
            for wid, slot in enumerate(self._slots):
                if slot.failed:
                    self._respawn_worker(wid)
                    restarted += 1
        finally:
            self._recovering = False
        return restarted

    def _detect_failures(self) -> None:
        sup = self._supervisor
        assert sup is not None
        now = _wall_clock()
        for wid, slot in enumerate(self._slots):
            if slot.failed:
                continue
            proc = self._procs[wid]
            conn = self._conns[wid]
            reason = None
            if proc.exitcode is not None:
                reason = f"exit code {proc.exitcode}"
            elif conn.closed:
                reason = "socket closed"
            elif (
                slot.last_heartbeat
                and now - slot.last_heartbeat > sup.heartbeat_timeout
            ):
                reason = f"no heartbeat for {now - slot.last_heartbeat:.2f}s"
            if reason is not None:
                self._mark_worker_down(wid, reason)

    def _mark_worker_down(self, wid: int, reason: str) -> None:
        slot = self._slots[wid]
        if slot.failed:
            return
        slot.failed = True
        slot.buffering = True
        slot.down_reason = reason
        if slot.down_since is None:
            slot.down_since = _wall_clock()
        conn = self._conns[wid]
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        conn.close()

    def _respawn_worker(self, wid: int) -> None:
        """Kill/reap the old process, spawn a fresh one, restore the latest
        snapshot (journal-backed actors rebuilt from disk), re-inject the
        snapshot's held outputs through the emission dedup, and retransmit
        every unacknowledged input frame."""
        sup = self._supervisor
        assert sup is not None
        slot = self._slots[wid]
        detected = slot.down_since if slot.down_since is not None else _wall_clock()
        breaker = self._breakers[wid]
        attempt = 0
        while True:
            now = _wall_clock()
            if not breaker.allow(now):
                raise SessionError(
                    f"worker {wid} circuit open after repeated respawn failures "
                    f"(last reason: {slot.down_reason})"
                )
            try:
                self._respawn_once(wid)
                breaker.record_success(_wall_clock())
                break
            except SessionError as exc:
                breaker.record_failure(_wall_clock())
                self._mark_worker_down(wid, f"respawn attempt failed: {exc}")
                attempt += 1
                if attempt >= sup.retry.max_attempts:
                    raise SessionError(
                        f"worker {wid} respawn failed after {attempt} attempts: {exc}"
                    )
                time.sleep(sup.retry.delay(attempt - 1))
        snap = slot.snapshot
        replayed = len(slot.unacked)
        recovered_at = _wall_clock()
        sup.record_recovery(
            worker=wid,
            detected=detected,
            recovered=recovered_at,
            replayed=replayed,
            reason=slot.down_reason,
            from_snapshot=snap is not None,
        )
        slot.down_since = None
        slot.down_reason = ""

    def _respawn_once(self, wid: int) -> None:
        sup = self._supervisor
        assert sup is not None
        slot = self._slots[wid]
        # Reap the old process with prejudice: SIGKILL leaves no split-brain
        # twin half-processing frames while the replacement starts.
        old_proc = self._procs[wid]
        try:
            if old_proc.is_alive():
                old_proc.kill()
            old_proc.join(5.0)
        except (OSError, ValueError):
            pass
        old_conn = self._conns[wid]
        if self._selector is not None and not old_conn.closed:
            try:
                self._selector.unregister(old_conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        old_conn.close()
        proc, conn = self._spawn_one(wid)
        self._procs[wid] = proc
        self._conns[wid] = conn
        assert self._selector is not None
        self._selector.register(conn.sock, selectors.EVENT_READ, conn)
        slot.epoch += 1
        slot.failed = False  # controls may flow; data frames still buffer
        slot.last_heartbeat = _wall_clock()
        snap = slot.snapshot
        # Journal-backed actors: rebuild parent-side by replaying the
        # on-disk journal, keep the replacement as the parent shadow, and
        # ship it alongside the snapshot state.
        journaled_names = [
            name
            for name, home in self._location.items()
            if home == wid and sup.is_journaled(name)
        ]
        recovered: Dict[str, Actor] = {}
        for name in journaled_names:
            replacement = sup.build_replacement(name)
            replacement.runtime = None
            recovered[name] = replacement
        jblob = (
            pickle.dumps(recovered, protocol=pickle.HIGHEST_PROTOCOL)
            if recovered
            else None
        )
        self._control(
            wid,
            {
                "op": "restore",
                "state": snap["state"] if snap is not None else None,
                "initial": None if snap is not None else self._initial_blobs.get(wid),
                "journaled": jblob,
            },
        )
        for name, replacement in recovered.items():
            replacement.runtime = self  # type: ignore[assignment]
            self._actors[name] = replacement
        ack = snap["ack"] if snap is not None else 0
        emission = snap["emission"] if snap is not None else 0
        self._control(wid, self._configure_payload(wid, ack, emission))
        self._control(wid, {"op": "start"})
        # Outputs captured by the snapshot may or may not have escaped the
        # dead worker — re-route them through the emission dedup, which
        # drops exactly the ones that did.
        if snap is not None:
            for held in snap["held"]:
                self._route_frame(wid, held)
        # Bounded loss: if overflow trimmed frames the snapshot never
        # covered, the replay has a gap — count it instead of hiding it.
        if slot.unacked:
            first = slot.unacked[0][0]
            if first > ack + 1:
                self.loss_accounting["replay_gap_frames"] += first - ack - 1
        for _d, frame in slot.unacked:
            conn.queue(frame)
        slot.buffering = False

    def drain_worker(self, wid: int, timeout: float = 5.0) -> bool:
        """Quiesce worker ``wid``: repeatedly flush its queues into a
        snapshot until the snapshot acknowledges every delivered frame (or
        ``timeout`` expires).  Returns True when fully drained."""
        if not self._supervised:
            raise ConfigurationError("drain_worker requires a ProcessSupervisor")
        slot = self._slots[wid]
        deadline = _wall_clock() + timeout
        while _wall_clock() < deadline:
            if slot.failed or self._conns[wid].closed:
                return False
            try:
                self._control(
                    wid,
                    {"op": "drain"},
                    timeout=max(0.1, deadline - _wall_clock()),
                )
            except SessionError:
                return False
            # FIFO: the drain reply follows the snapshot it forced, so the
            # slot's ack is current by the time _control returns.
            if slot.acked >= slot.delivery_seq:
                return True
        return False

    def restart_worker(
        self, wid: int, drain: bool = True, drain_timeout: float = 5.0
    ) -> bool:
        """Planned restart (the elasticity path): drain, then respawn.

        With ``drain`` the worker's queues are quiesced into a final
        snapshot first, so the restart loses nothing; when the drain cannot
        complete in time the restart proceeds anyway — unsnapshotted inputs
        are replayed from the parent's buffer, and any genuinely
        unprotectable frames are counted in :attr:`loss_accounting`.
        Returns True when the pre-restart drain completed.
        """
        if not self._supervised:
            raise ConfigurationError("restart_worker requires a ProcessSupervisor")
        if not 0 <= wid < self.workers:
            raise ConfigurationError(f"worker {wid} out of range")
        drained = self.drain_worker(wid, timeout=drain_timeout) if drain else False
        if drain and not drained:
            self.loss_accounting["drain_timeouts"] += 1
        self._mark_worker_down(wid, "planned restart")
        self._recovering = True
        try:
            self._respawn_worker(wid)
        finally:
            self._recovering = False
        return drained

    # -- execution ---------------------------------------------------------- #

    def start_if_needed(self) -> None:
        if not self._started:
            self.start()

    def run(self, until_time: Optional[float] = None, max_events: Optional[int] = None) -> float:
        horizon = until_time if until_time is not None else self.now + 0.1
        return self.run_for(max(0.0, horizon - self.now))

    def run_for(self, duration: float) -> float:
        """Pump routing, timers, and local deliveries for ``duration`` s."""
        self.start_if_needed()
        deadline = _wall_clock() + duration
        while True:
            remaining = deadline - _wall_clock()
            if remaining <= 0:
                break
            self._pump(min(0.05, remaining))
        return self.now

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_events: int = 1_000_000,
        timeout: float = 60.0,
    ) -> float:
        """Pump until ``predicate()`` holds (checked between pump slices)."""
        self.start_if_needed()
        deadline = _wall_clock() + timeout
        while not predicate():
            if _wall_clock() > deadline:
                raise SessionError("run_until timed out on the multiproc runtime")
            self._pump(0.02)
        return self.now

    def settle(
        self,
        predicate: Callable[[], bool],
        max_seconds: float = 30.0,
        refresh: Optional[Iterable[str]] = None,
    ) -> bool:
        """Pump until ``predicate()`` holds, refreshing worker shadows first.

        The multiproc analogue of ``AioRuntime.settle``: deployments check
        convergence by reading actor state, which for placed actors lives in
        the workers — each probe pulls it back before evaluating.
        """
        self.start_if_needed()
        deadline = _wall_clock() + max_seconds
        while True:
            self.refresh_actors(refresh)
            if predicate():
                return True
            if _wall_clock() > deadline:
                return False
            self._pump(0.1)

    # -- the pump ----------------------------------------------------------- #

    def _pump(self, max_wait: float) -> None:
        if self._worker_error is not None:
            error, self._worker_error = self._worker_error, None
            raise SessionError(f"worker failure: {error}")
        progressed = self._drain_local()
        progressed += self.loop.fire_due()
        for conn in self._conns:
            if conn.wants_write and not conn.closed:
                conn.flush()
        if self._selector is not None and self._conns:
            wait = 0.0 if (progressed or self._pending_local) else min(
                max_wait, self.loop.seconds_to_next(max_wait)
            )
            # Backlogged conns must wake the select on writability too, or
            # flush progress gates on unrelated inbound traffic (slow and
            # wildly variable under bulk sends).
            for conn in self._conns:
                if conn.closed:
                    continue
                events = selectors.EVENT_READ | (
                    selectors.EVENT_WRITE if conn.wants_write else 0
                )
                self._selector.modify(conn.sock, events, conn)
            for key, mask in self._selector.select(wait):
                conn = key.data
                if mask & selectors.EVENT_READ:
                    for frame in conn.read_frames():
                        self._route_frame(conn.wid, frame)
                if conn.closed and not self._stopped:
                    if self._supervised:
                        self._mark_worker_down(conn.wid, "disconnected")
                    else:
                        self._worker_error = "a worker process disconnected"
            for conn in self._conns:
                if conn.wants_write and not conn.closed:
                    conn.flush()
        elif not progressed and not self._pending_local:
            time.sleep(min(max_wait, self.loop.seconds_to_next(max_wait)))

    def _drain_local(self) -> int:
        delivered = 0
        pending = self._pending_local
        actors = self._actors
        while pending:
            src, dst, message = pending.popleft()
            actor = actors.get(dst)
            if actor is not None:
                actor.on_message(src, message)
                delivered += 1
        return delivered

    def _route_frame(self, wid: int, frame: bytes) -> None:
        kind, seq, src, dst, payload = _parse_envelope(memoryview(frame)[4:])
        if self._supervised and 0 <= wid < len(self._slots):
            self._slots[wid].last_heartbeat = _wall_clock()
        if kind == _K_REPLY:
            reply = pickle.loads(bytes(payload))
            if "worker_error" in reply:
                self._worker_error = reply["worker_error"]
            elif "snapshot" in reply:
                self._on_snapshot(wid, reply["snapshot"])
            elif "heartbeat" in reply:
                pass  # liveness already noted above
            else:
                self._ctrl_replies[reply["seq"]] = reply
            return
        if kind != _K_MSG:
            raise SessionError(f"unexpected frame kind {kind} at the router")
        if seq and self._supervised and 0 <= wid < len(self._slots):
            slot = self._slots[wid]
            if seq <= slot.emission_high:
                return  # duplicate emission from a restarted worker
            slot.emission_high = seq
        target = self._location.get(dst)
        if target is None:
            if dst not in self._actors:
                raise SessionError(f"route to unknown actor {dst!r}")
            # payload view pins `frame`; lazy batches stay valid after this.
            self._pending_local.append((src, dst, decode_value_binary(payload)))
            return
        # Worker→worker: forward the original frame bytes untouched (the
        # supervised path re-stamps seq with the destination's delivery
        # number on a copy inside _admit_frame).
        self._queue_to_worker(target, frame)

    def _on_snapshot(self, wid: int, snap: Dict[str, Any]) -> None:
        """Record a worker snapshot and trim its retransmit buffer: every
        input frame the snapshot acknowledges is now recoverable from the
        snapshot itself and never needs retransmission."""
        slot = self._slots[wid]
        slot.snapshot = snap
        ack = int(snap["ack"])
        unacked = slot.unacked
        while unacked and unacked[0][0] <= ack:
            _d, old = unacked.popleft()
            slot.unacked_bytes -= len(old)
        slot.acked = ack

    # -- context manager ----------------------------------------------------- #

    def __enter__(self) -> "MultiprocRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def _read_one_frame_blocking(sock: socket.socket, timeout: float = 30.0) -> bytes:
    sock.settimeout(timeout)
    data = b""
    while len(data) < 4:
        chunk = sock.recv(4 - len(data))
        if not chunk:
            raise SessionError("worker hung up during handshake")
        data += chunk
    (n,) = _U32.unpack(data)
    body = bytearray()
    while len(body) < n:
        chunk = sock.recv(n - len(body))
        if not chunk:
            raise SessionError("worker hung up during handshake")
        body += chunk
    return data + bytes(body)


# ------------------------------------------------------------------------- #
# Worker process
# ------------------------------------------------------------------------- #


class _WorkerNode:
    """The runtime surface inside one worker process.

    Local destinations deliver in-process (same semantics as the parent's
    pending queue); everything else is encoded once and sent to the router.

    Under supervision the node follows the output-commit discipline from
    the module docstring: remote sends are assigned an emission id and
    *held*; a periodic snapshot pickles actor state (journal-backed actors
    excluded), records the held frames and the input ack, queues the
    snapshot to the parent, and only then releases the held frames — per
    TCP FIFO, no frame can reach the parent before the snapshot that
    captured it.
    """

    def __init__(self, worker_id: int, sock: socket.socket) -> None:
        self.worker_id = worker_id
        self.loop = _RealtimeLoop()
        self.conn = _FrameConn(sock)
        self._actors: Dict[str, Actor] = {}
        self._pending: "deque[Tuple[str, str, Any]]" = deque()
        self._started = False
        self._stopping = False
        # -- supervision state (set by the "configure" control op) ---------
        self._supervised = False
        self._heartbeat_interval = 0.5
        self._snapshot_interval = 0.05
        self._journaled: Set[str] = set()
        #: Highest input delivery seq dispatched (strict: lower = duplicate).
        self._delivered_seq = 0
        #: Last emission id assigned to an outbound frame.
        self._emission = 0
        #: Outbound frames awaiting capture by the next snapshot.
        self._held: List[bytes] = []
        self._last_snap = (-1, -1)

    @property
    def now(self) -> float:
        return self.loop.now

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def register(self, actor: Actor) -> Actor:
        actor.runtime = self  # type: ignore[assignment]
        self._actors[actor.name] = actor
        if self._started:
            actor.on_start()
        return actor

    def send(self, src: str, dst: str, message: Any) -> None:
        if dst in self._actors:
            self._pending.append((src, dst, message))
            return
        payload = encode_value_binary(message)
        if self._supervised:
            self._emission += 1
            self._held.append(_envelope(_K_MSG, src, dst, payload, seq=self._emission))
        else:
            self.conn.queue(_envelope(_K_MSG, src, dst, payload))

    def _reply(self, payload: Dict[str, Any]) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.conn.queue(_envelope(_K_REPLY, "", "", blob))

    def _handle_control(self, ctrl: Dict[str, Any]) -> None:
        op = ctrl["op"]
        seq = ctrl["seq"]
        try:
            if op == "load":
                for actor in pickle.loads(ctrl["actors"]):
                    self.register(actor)
                self._reply({"seq": seq, "value": None})
            elif op == "restore":
                # Replace the world: snapshot state (or the initial shipped
                # blob) plus journal-recovered actors from the parent.
                self._actors.clear()
                self._pending.clear()
                self._started = False
                state_blob = ctrl.get("state")
                if state_blob is not None:
                    for actor in pickle.loads(state_blob).values():
                        self.register(actor)
                initial = ctrl.get("initial")
                if initial is not None:
                    for actor in pickle.loads(initial):
                        self.register(actor)
                jblob = ctrl.get("journaled")
                if jblob is not None:
                    # Journal replacements override any stale initial copy.
                    for actor in pickle.loads(jblob).values():
                        self.register(actor)
                self._reply({"seq": seq, "value": None})
            elif op == "configure":
                self._supervised = True
                self._heartbeat_interval = float(ctrl["heartbeat_interval"])
                self._snapshot_interval = float(ctrl["snapshot_interval"])
                self._journaled = set(ctrl.get("journaled", ()))
                self._delivered_seq = int(ctrl.get("delivered", 0))
                self._emission = int(ctrl.get("emission", 0))
                self._held = []
                self._last_snap = (-1, -1)
                self._reply({"seq": seq, "value": None})
            elif op == "start":
                if not self._started:
                    self._started = True
                    for actor in list(self._actors.values()):
                        actor.on_start()
                    if self._supervised:
                        self._arm_supervision()
                self._reply({"seq": seq, "value": None})
            elif op == "fetch":
                actor = self._actors[ctrl["name"]]
                self._reply({"seq": seq, "value": self._pickle_detached([actor.name])})
            elif op == "fetch_many":
                self._reply(
                    {"seq": seq, "value": self._pickle_detached(list(ctrl["names"]))}
                )
            elif op == "peek":
                value = ctrl["fn"](self._actors[ctrl["name"]])
                self._reply({"seq": seq, "value": value})
            elif op == "drain":
                # Force a snapshot (which first drains local pending work and
                # releases held outputs); the reply rides behind it in FIFO
                # order, so the parent's ack is current when it arrives.
                self._snapshot(force=True)
                self._reply({"seq": seq, "value": {"ack": self._delivered_seq}})
            elif op == "stop":
                if self._supervised:
                    self._snapshot(force=True)
                self._stopping = True
                self._reply({"seq": seq, "value": None})
            else:
                self._reply({"seq": seq, "error": f"unknown control op {op!r}"})
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            self._reply({"seq": seq, "error": _format_error(exc)})

    def _arm_supervision(self) -> None:
        def heartbeat() -> None:
            self._reply({"heartbeat": self.worker_id, "ack": self._delivered_seq})
            self.loop.schedule(self._heartbeat_interval, heartbeat)

        def snapshot() -> None:
            self._snapshot()
            self.loop.schedule(self._snapshot_interval, snapshot)

        # Baseline snapshot straight away: a worker that dies before any
        # traffic is restorable to its exact post-start state.
        self._snapshot(force=True)
        self.loop.schedule(self._heartbeat_interval, heartbeat)
        self.loop.schedule(self._snapshot_interval, snapshot)

    def _snapshot(self, force: bool = False) -> None:
        """Capture (actor state, held outputs, input ack), queue it to the
        parent, then release the held outputs.  Skips when nothing changed
        since the last capture."""
        # In-flight local messages are part of the state; settle them first
        # so the pickled actors are not mid-conversation.
        while self._pending:
            src, dst, message = self._pending.popleft()
            self._dispatch_safely(src, dst, message)
        marker = (self._delivered_seq, self._emission)
        if not force and marker == self._last_snap and not self._held:
            return
        names = [name for name in self._actors if name not in self._journaled]
        snap = {
            "ack": self._delivered_seq,
            "emission": self._emission,
            "state": self._pickle_detached(names),
            "held": list(self._held),
        }
        self._reply({"snapshot": snap})
        self._last_snap = marker
        held, self._held = self._held, []
        for frame in held:
            self.conn.queue(frame)

    def _pickle_detached(self, names: List[str]) -> bytes:
        """Pickle ``{name: actor}`` with runtimes stripped (one blob, so
        objects shared between co-located actors stay shared)."""
        actors = {name: self._actors[name] for name in names}
        saved = {name: actor.runtime for name, actor in actors.items()}
        for actor in actors.values():
            actor.runtime = None
        try:
            return pickle.dumps(actors, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            for name, actor in actors.items():
                actor.runtime = saved[name]

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        actor = self._actors.get(dst)
        if actor is None:
            self._reply({"worker_error": f"worker {self.worker_id} has no actor {dst!r}"})
            return
        actor.on_message(src, message)

    def run(self) -> None:
        selector = selectors.DefaultSelector()
        selector.register(self.conn.sock, selectors.EVENT_READ, self.conn)
        try:
            while not self._stopping:
                while self._pending:
                    src, dst, message = self._pending.popleft()
                    self._dispatch_safely(src, dst, message)
                self.loop.fire_due()
                if self.conn.wants_write:
                    self.conn.flush()
                wait = (
                    0.0
                    if self._pending
                    else min(0.05, self.loop.seconds_to_next(0.05))
                )
                selector.modify(
                    self.conn.sock,
                    selectors.EVENT_READ
                    | (selectors.EVENT_WRITE if self.conn.wants_write else 0),
                    self.conn,
                )
                for _key, mask in selector.select(wait):
                    if mask & selectors.EVENT_READ:
                        for frame in self.conn.read_frames():
                            self._on_frame(frame)
                if self.conn.closed:
                    break
                if self.conn.wants_write:
                    self.conn.flush()
            # Final flush so stop-acks and late sends reach the parent.
            deadline = _wall_clock() + 2.0
            while self.conn.wants_write and _wall_clock() < deadline:
                self.conn.flush()
        finally:
            selector.close()
            self.conn.close()

    def _on_frame(self, frame: bytes) -> None:
        kind, seq, src, dst, payload = _parse_envelope(memoryview(frame)[4:])
        if kind == _K_CTRL:
            self._handle_control(pickle.loads(bytes(payload)))
            return
        if kind != _K_MSG:
            self._reply({"worker_error": f"worker got frame kind {kind}"})
            return
        if seq:
            if seq <= self._delivered_seq:
                return  # retransmitted duplicate after a parent replay
            self._delivered_seq = seq
        # `payload` views `frame` (immutable bytes), so lazy RecordBatch
        # views decoded here stay valid for the life of the batch.
        self._dispatch_safely(src, dst, decode_value_binary(payload))

    def _dispatch_safely(self, src: str, dst: str, message: Any) -> None:
        try:
            self._deliver(src, dst, message)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            self._reply(
                {
                    "worker_error": (
                        f"worker {self.worker_id} dispatch to {dst!r} failed:\n"
                        + _format_error(exc)
                    )
                }
            )


def _worker_main(worker_id: int, host: str, port: int) -> None:
    # Workers are ingest loops: they allocate records at a high rate and
    # most survive into long-lived log storage, the worst case for CPython's
    # default generational thresholds (every young collection promotes, and
    # full collections rescan the ever-growing store).  Records and frames
    # are acyclic, so raising the thresholds trades nothing but peak cycle
    # latency for a large steady-state throughput win.
    gc.set_threshold(200_000, 100, 100)
    sock = socket.create_connection((host, port), timeout=30.0)
    hello = pickle.dumps({"hello": worker_id}, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_envelope(_K_REPLY, "", "", hello))
    node = _WorkerNode(worker_id, sock)
    try:
        node.run()
    except Exception:  # noqa: BLE001 - last-ditch crash report
        sys.stderr.write(
            f"[repro-mp-worker-{worker_id}] crashed:\n{traceback.format_exc()}"
        )
        sys.stderr.flush()
        raise
