"""Actor runtimes: event loop, actor base class, deterministic local runtime."""

from .actor import Actor
from .local import (
    BaseRuntime,
    LocalRuntime,
    partitioned,
    random_drops,
    random_latency,
)
from .loop import EventHandle, EventLoop
from .messages import (
    CONTROL_MESSAGE_BYTES,
    Payload,
    RecordBatch,
    record_count_of,
    wire_size_of,
)
from .supervisor import ProcessSupervisor, Supervisor

__all__ = [
    "Actor",
    "BaseRuntime",
    "CONTROL_MESSAGE_BYTES",
    "EventHandle",
    "EventLoop",
    "LocalRuntime",
    "Payload",
    "ProcessSupervisor",
    "RecordBatch",
    "Supervisor",
    "partitioned",
    "random_drops",
    "random_latency",
    "record_count_of",
    "wire_size_of",
]
