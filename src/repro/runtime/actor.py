"""Actor abstraction: every protocol component is an actor.

Actors interact with the world only through ``send``, timers, and the
messages delivered to :meth:`Actor.on_message`.  This is what lets the same
maintainer/batcher/filter/queue code run unchanged under the deterministic
local runtime, the discrete-event capacity simulator, and (via a thin shim)
the asyncio TCP runtime.
"""

from __future__ import annotations

from abc import ABC
from typing import Any, Callable, Optional, TYPE_CHECKING

from ..core.errors import ConfigurationError, SessionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .local import BaseRuntime
    from .loop import EventHandle


class Actor(ABC):
    """Base class for protocol components.

    Subclasses implement :meth:`on_message` and may override
    :meth:`on_start` (called once when the runtime starts) and
    :meth:`service_cost` (consulted by the capacity simulator).
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("actors need a non-empty name")
        self.name = name
        self.runtime: Optional["BaseRuntime"] = None

    # -- lifecycle ------------------------------------------------------ #

    def on_start(self) -> None:
        """Hook invoked when the runtime starts (set up periodic timers here)."""

    def on_message(self, sender: str, message: Any) -> None:
        """Handle one delivered message."""
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------- #

    @property
    def now(self) -> float:
        return self._require_runtime().now

    def send(self, dst: str, message: Any) -> None:
        """Send ``message`` to the actor registered under ``dst``."""
        self._require_runtime().send(self.name, dst, message)

    def set_timer(
        self,
        delay: float,
        callback: Callable[[], None],
        periodic: bool = False,
    ) -> "EventHandle":
        """Schedule ``callback`` after ``delay`` seconds (optionally repeating).

        Periodic timers re-arm themselves after each firing until cancelled.
        """
        runtime = self._require_runtime()
        if not periodic:
            return runtime.loop.schedule(delay, callback)

        state = {"handle": None, "cancelled": False}

        def fire() -> None:
            if state["cancelled"]:
                return
            callback()
            if not state["cancelled"]:
                state["handle"] = runtime.loop.schedule(delay, fire)

        state["handle"] = runtime.loop.schedule(delay, fire)

        class _PeriodicHandle:
            @staticmethod
            def cancel() -> None:
                state["cancelled"] = True
                inner = state["handle"]
                if inner is not None:
                    inner.cancel()

        return _PeriodicHandle()  # type: ignore[return-value]

    def service_cost(self, message: Any) -> Optional[float]:
        """CPU seconds to process ``message`` under the capacity simulator.

        Return ``None`` (the default) to let the simulator derive the cost
        from the message's record count and the machine profile.
        """
        return None

    def _require_runtime(self) -> "BaseRuntime":
        if self.runtime is None:
            raise SessionError(
                f"actor {self.name!r} is not registered with a runtime"
            )
        return self.runtime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
