"""Record model for the shared log.

The paper (§3, "Data model") gives each record three pieces of metadata:

* **LId** — the record copy's position in one datacenter's shared log.  Every
  datacenter assigns its own LId to its copy, so the LId is *not* part of the
  immutable record; it belongs to the per-datacenter :class:`LogEntry`.
* **TOId** — the total-order id of the record with respect to its *host*
  datacenter (the datacenter whose application client created it).  All
  copies of a record share the same TOId.
* **Tags** — key/value pairs attached by the application and visible to the
  system (used by the indexers); the record *body* is opaque.

In addition each record carries a **dependency vector**: the appending
client's knowledge of every datacenter's records at append time, expressed as
``{datacenter: max TOId seen}``.  This is the causality metadata used by the
abstract solution (§6.1) and the queue stage (§6.2) to decide when a record
may be incorporated into a local log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from .errors import ConfigurationError

#: Datacenters are identified by short strings ("A", "B", "us-east", ...).
DatacenterId = str

#: Mapping from datacenter id to the highest TOId known from it.
KnowledgeVector = Dict[DatacenterId, int]


@dataclass(frozen=True, order=True, slots=True)
class RecordId:
    """Globally unique, immutable identity of a record: ``(host, TOId)``.

    TOIds start at 1 (the paper initialises ATable entries to zero so that
    "the first record of each node has a TOId of 1").
    """

    host: DatacenterId
    toid: int

    def __post_init__(self) -> None:
        if self.toid < 1:
            raise ConfigurationError(f"TOIds start at 1, got {self.toid}")

    def predecessor(self) -> Optional["RecordId"]:
        """The record that precedes this one in its host's total order."""
        if self.toid == 1:
            return None
        return RecordId(self.host, self.toid - 1)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"<{self.host},{self.toid}>"


def freeze_tags(tags: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a tag mapping into a hashable, order-stable tuple."""
    if not tags:
        return ()
    return tuple(sorted(tags.items()))


@dataclass(frozen=True, slots=True)
class Record:
    """An immutable shared-log record.

    Records are created once by an application client at their host
    datacenter and replicated verbatim; only the LId differs between copies.
    """

    rid: RecordId
    body: Any
    tags: Tuple[Tuple[str, Any], ...] = ()
    deps: Tuple[Tuple[DatacenterId, int], ...] = ()
    internal: bool = False  # True for system records (no-op gap fillers etc.)

    @classmethod
    def make(
        cls,
        host: DatacenterId,
        toid: int,
        body: Any,
        tags: Optional[Mapping[str, Any]] = None,
        deps: Optional[Mapping[DatacenterId, int]] = None,
        internal: bool = False,
    ) -> "Record":
        """Build a record from friendly mapping arguments."""
        dep_items = tuple(sorted((deps or {}).items()))
        return cls(
            rid=RecordId(host, toid),
            body=body,
            tags=freeze_tags(tags),
            deps=dep_items,
            internal=internal,
        )

    @property
    def host(self) -> DatacenterId:
        return self.rid.host

    @property
    def toid(self) -> int:
        return self.rid.toid

    def tag_dict(self) -> Dict[str, Any]:
        """The record's tags as a plain dictionary."""
        return dict(self.tags)

    def dep_vector(self) -> KnowledgeVector:
        """The record's causal dependency vector as a plain dictionary.

        The implicit dependency on the previous record from the same host is
        *included*: a record ``<A, t>`` always depends on ``<A, t-1>``.
        """
        vector = dict(self.deps)
        vector[self.host] = max(vector.get(self.host, 0), self.toid - 1)
        return vector

    def depends_on(self, other: RecordId) -> bool:
        """Whether ``other`` is in this record's (direct) dependency set."""
        return self.dep_vector().get(other.host, 0) >= other.toid

    def size_bytes(self, default_body_size: int = 512) -> int:
        """Approximate wire size of the record.

        Used by the simulator's bandwidth accounting.  String and bytes
        bodies are measured; other bodies fall back to ``default_body_size``
        (the paper's experiments use 512-byte records).
        """
        if isinstance(self.body, bytes):
            body = len(self.body)
        elif isinstance(self.body, str):
            body = len(self.body.encode("utf-8"))
        else:
            body = default_body_size
        tag_overhead = sum(len(str(k)) + len(str(v)) for k, v in self.tags)
        dep_overhead = 12 * len(self.deps)
        return body + tag_overhead + dep_overhead + 24  # 24B fixed header


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One datacenter's copy of a record: the record plus its local LId.

    LIds start at 0 and are dense: position ``i`` in a datacenter's shared
    log always holds exactly one record once the head of the log has passed
    ``i``.
    """

    lid: int
    record: Record

    def __post_init__(self) -> None:
        if self.lid < 0:
            raise ConfigurationError(f"LIds are non-negative, got {self.lid}")

    @property
    def rid(self) -> RecordId:
        return self.record.rid


@dataclass(frozen=True, slots=True)
class AppendResult:
    """Returned to the application client after a successful append (§3).

    Carries the assigned TOId and LId as the paper's ``Append`` API promises.
    """

    rid: RecordId
    lid: int

    @property
    def toid(self) -> int:
        return self.rid.toid


@dataclass(slots=True)
class ReadRules:
    """Predicate object for ``Read(in: rules, out: records)`` (§3).

    A rule may constrain LIds, TOIds (per host datacenter), and tags.  All
    supplied constraints must hold (conjunction).  ``limit`` with
    ``most_recent`` implements the indexer's "return the most recent x
    records" lookups (§5.3).
    """

    min_lid: Optional[int] = None
    max_lid: Optional[int] = None
    host: Optional[DatacenterId] = None
    min_toid: Optional[int] = None
    max_toid: Optional[int] = None
    tag_key: Optional[str] = None
    tag_value: Optional[Any] = None
    tag_min_value: Optional[Any] = None
    limit: Optional[int] = None
    most_recent: bool = True
    include_internal: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)

    def matches(self, entry: LogEntry) -> bool:
        """Whether a log entry satisfies every constraint in this rule."""
        record = entry.record
        if record.internal and not self.include_internal:
            return False
        if self.min_lid is not None and entry.lid < self.min_lid:
            return False
        if self.max_lid is not None and entry.lid > self.max_lid:
            return False
        if self.host is not None and record.host != self.host:
            return False
        if self.min_toid is not None and record.toid < self.min_toid:
            return False
        if self.max_toid is not None and record.toid > self.max_toid:
            return False
        if self.tag_key is not None:
            tags = record.tag_dict()
            if self.tag_key not in tags:
                return False
            if self.tag_value is not None and tags[self.tag_key] != self.tag_value:
                return False
            if self.tag_min_value is not None and tags[self.tag_key] < self.tag_min_value:
                return False
        return True
