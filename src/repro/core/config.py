"""Configuration objects shared across FLStore, Chariots, and the simulator.

Defaults follow the paper's experimental setup (§7): 512-byte records, a
round-robin batch size of 1000 LIds per maintainer round (Figure 4), and
machine profiles calibrated so a single pipeline stage machine sustains the
~120–130 K records/s the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .errors import ConfigurationError
from .retry import RetryPolicy


@dataclass(frozen=True)
class FLStoreConfig:
    """Tunables for the intra-datacenter log store (§5)."""

    #: Number of consecutive LIds in one maintainer round (Figure 4 uses 1000).
    batch_size: int = 1000
    #: Seconds between head-of-log gossip messages between maintainers (§5.4).
    gossip_interval: float = 0.005
    #: When True, a maintainer holding an explicit-order record whose minimum
    #: bound cannot yet be satisfied fills the intervening positions it owns
    #: with internal no-op records instead of waiting (liveness fallback).
    fill_gaps_with_noops: bool = False
    #: Maximum records buffered per append request batch from a client.
    append_batch_limit: int = 10_000

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.gossip_interval <= 0:
            raise ConfigurationError("gossip_interval must be positive")


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables for the Chariots multi-stage pipeline (§6.2)."""

    #: Records buffered per (batcher, filter) before a flush.
    batcher_flush_threshold: int = 64
    #: Seconds after which a non-empty batcher buffer flushes regardless.
    batcher_flush_interval: float = 0.002
    #: High-water mark on the *total* records buffered across a batcher's
    #: per-filter buffers: reaching it forces a full flush (backpressure for
    #: many-filter deployments where no single buffer hits the threshold).
    batcher_buffer_limit: int = 8192
    #: Seconds the token dwells at a queue before moving on.
    token_hold_interval: float = 0.001
    #: Maximum deferred records shipped along with the token (§6.2 Queues:
    #: "The token might include all, some, or none of the [deferred] records").
    token_deferred_limit: int = 1024
    #: Seconds between sender replication shipments to each remote datacenter.
    replication_interval: float = 0.02
    #: Records per replication shipment.
    replication_batch_limit: int = 4096
    #: High-water mark on a queue's buffered (externals + drafts) while it
    #: does not hold the token: past it, arriving batches are forwarded
    #: around the ring toward the token holder instead of buffered.
    queue_buffer_limit: int = 65_536
    #: High-water mark on a sender's per-maintainer retransmission window:
    #: past it, the sender stops fetching new records from that maintainer's
    #: durable log (the fetch cursor pauses) until acks drain the window.
    sender_buffer_limit: int = 65_536
    #: Seconds between garbage-collection sweeps (0 disables GC).
    gc_interval: float = 0.0
    #: Keep at least this many most recent LIds even when GC-eligible.
    gc_keep_records: int = 0
    #: First replication retransmission timeout; later attempts back off
    #: exponentially (capped, jittered) instead of the old fixed constant.
    retransmit_base: float = 0.5
    #: Cap on the retransmission backoff.
    retransmit_max: float = 4.0
    #: Backoff multiplier between consecutive retransmissions.
    retransmit_multiplier: float = 2.0
    #: ±fraction of seeded jitter on each retransmission delay.
    retransmit_jitter: float = 0.1
    #: Consecutive retransmission failures before a peer datacenter's
    #: circuit breaker opens (senders stop shipping until a probe succeeds).
    breaker_failure_threshold: int = 8
    #: Seconds an open breaker waits before allowing a half-open probe.
    breaker_reset_timeout: float = 2.0

    def __post_init__(self) -> None:
        if self.batcher_flush_threshold < 1:
            raise ConfigurationError("batcher_flush_threshold must be >= 1")
        if self.batcher_buffer_limit < self.batcher_flush_threshold:
            raise ConfigurationError(
                "batcher_buffer_limit must be >= batcher_flush_threshold"
            )
        if self.token_deferred_limit < 0:
            raise ConfigurationError("token_deferred_limit must be >= 0")
        if self.queue_buffer_limit < 1:
            raise ConfigurationError("queue_buffer_limit must be >= 1")
        if self.sender_buffer_limit < 1:
            raise ConfigurationError("sender_buffer_limit must be >= 1")
        if self.retransmit_base <= 0:
            raise ConfigurationError("retransmit_base must be positive")
        if self.retransmit_max < self.retransmit_base:
            raise ConfigurationError("retransmit_max must be >= retransmit_base")

    def retransmit_policy(self) -> "RetryPolicy":
        """The replication retransmission schedule as a shared RetryPolicy."""
        return RetryPolicy(
            base_delay=self.retransmit_base,
            max_delay=self.retransmit_max,
            multiplier=self.retransmit_multiplier,
            jitter=self.retransmit_jitter,
            max_attempts=1_000_000,  # senders retransmit until acked
        )


@dataclass(frozen=True)
class MachineProfile:
    """Capacity model for one simulated machine (§7 experimental setup).

    ``per_record_cost`` is the CPU-side service time per record; a machine
    alone therefore peaks near ``1 / per_record_cost`` records/s.  The
    overload knee reproduces Figure 7: once the backlog passes
    ``saturation_queue`` batches, service slows by ``overload_penalty`` per
    excess batch (capped), so pushing past the peak *reduces* throughput.
    """

    name: str = "private-cloud"
    per_record_cost: float = 1.0 / 132_000
    nic_bandwidth_bytes: float = 10e9 / 8  # 10 GbE
    saturation_queue: int = 24
    overload_penalty: float = 0.012
    overload_cap: float = 1.35

    def __post_init__(self) -> None:
        if self.per_record_cost <= 0:
            raise ConfigurationError("per_record_cost must be positive")
        if self.nic_bandwidth_bytes <= 0:
            raise ConfigurationError("nic_bandwidth_bytes must be positive")
        if self.overload_cap < 1.0:
            raise ConfigurationError("overload_cap must be >= 1.0")


#: Machine profile matching the paper's private cluster (Xeon E5620, 10 GbE,
#: 0.15 ms RTT).  A single maintainer sustains ~131 K appends/s (§7.1).
PRIVATE_CLOUD = MachineProfile(
    name="private-cloud",
    per_record_cost=1.0 / 132_000,
    nic_bandwidth_bytes=10e9 / 8,
    saturation_queue=24,
    overload_penalty=0.012,
    overload_cap=1.09,
)

#: Machine profile matching AWS c3.large (2 vCPU, shared NIC): peaks near
#: 150 K then degrades to ~120 K under overload (Figure 7).
PUBLIC_CLOUD = MachineProfile(
    name="public-cloud",
    per_record_cost=1.0 / 152_000,
    nic_bandwidth_bytes=1e9 / 8,
    saturation_queue=12,
    overload_penalty=0.035,
    overload_cap=1.27,
)


@dataclass(frozen=True)
class NetworkProfile:
    """Latency model for links between machines."""

    #: Intra-rack RTT of the private cluster (§7: average 0.15 ms).
    lan_rtt: float = 0.00015
    #: Cross-datacenter RTT (representative US-East <-> US-West).
    wan_rtt: float = 0.060
    #: Fixed per-message framing overhead in bytes.
    message_overhead_bytes: int = 64

    @property
    def lan_latency(self) -> float:
        return self.lan_rtt / 2

    @property
    def wan_latency(self) -> float:
        return self.wan_rtt / 2


@dataclass(frozen=True)
class WorkloadConfig:
    """Record-generation parameters for benchmarks (§7)."""

    record_size: int = 512
    #: Target appends/s per client machine.
    target_throughput: float = 125_000.0
    #: Records per client append batch (clients batch like the paper's do).
    client_batch: int = 500
    duration: float = 5.0

    def __post_init__(self) -> None:
        if self.record_size < 1:
            raise ConfigurationError("record_size must be >= 1")
        if self.target_throughput <= 0:
            raise ConfigurationError("target_throughput must be positive")


@dataclass
class DeploymentSpec:
    """How many machines each Chariots stage gets in one datacenter (§6.2).

    The evaluation's Tables 2–5 are sweeps over these counts.
    """

    clients: int = 1
    batchers: int = 1
    filters: int = 1
    queues: int = 1
    maintainers: int = 1
    senders: int = 1
    receivers: int = 1
    extra: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for stage in ("clients", "batchers", "filters", "queues", "maintainers", "senders", "receivers"):
            if getattr(self, stage) < 1:
                raise ConfigurationError(f"{stage} must be >= 1")

    @classmethod
    def uniform(
        cls, machines_per_stage: int, clients: Optional[int] = None
    ) -> "DeploymentSpec":
        """A deployment with the same machine count at every stage."""
        n = machines_per_stage
        return cls(
            clients=clients if clients is not None else n,
            batchers=n,
            filters=n,
            queues=n,
            maintainers=n,
            senders=n,
            receivers=n,
        )
