"""In-memory shared-log storage with gap tracking and tag indexing.

:class:`LogStore` is the storage primitive used by log maintainers (each
maintainer holds a ``LogStore`` restricted to the LIds it owns) and by the
abstract single-node solution (which holds the whole log in one store).

The store separates two notions the paper is careful about (§5.4):

* the **max assigned LId** — how far any position has been filled, and
* the **head of the log (HL)** — the highest LId below which *no gaps*
  exist, which is what readers are allowed to observe.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterator, List, Optional

from .errors import GarbageCollectedError, GapError, ImmutabilityError, LidOutOfRangeError
from .record import LogEntry, ReadRules, Record, RecordId


class LogStore:
    """A (possibly sparse) mapping from LIds to records with a dense prefix.

    Supports out-of-order placement (``put``), contiguity tracking
    (``contiguous_upto``), rule-based reads, tag lookup, truncation for
    garbage collection, and an optional append journal hook for durability
    testing.
    """

    def __init__(self, journal: Optional[Callable[[int, Record], None]] = None) -> None:
        self._entries: Dict[int, Record] = {}
        self._by_rid: Dict[RecordId, int] = {}
        self._tag_index: Dict[str, List[int]] = defaultdict(list)
        self._max_lid: int = -1
        self._contiguous_upto: int = -1  # highest L such that 0..L all present
        self._truncated_below: int = 0   # LIds < this were garbage collected
        self._journal = journal

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def put(self, lid: int, record: Record) -> LogEntry:
        """Place ``record`` at position ``lid``.

        Positions are write-once (records are immutable); re-putting the
        *same* record at the same position is an idempotent no-op so that
        retried placements are harmless.
        """
        existing = self._entries.get(lid)
        if existing is not None:
            if existing.rid == record.rid:
                return LogEntry(lid, existing)
            raise ImmutabilityError(lid)
        if lid < self._truncated_below:
            raise GarbageCollectedError(lid, self._truncated_below)
        self._entries[lid] = record
        self._by_rid[record.rid] = lid
        for key, _value in record.tags:
            self._tag_index[key].append(lid)
        if lid > self._max_lid:
            self._max_lid = lid
        while (self._contiguous_upto + 1) in self._entries:
            self._contiguous_upto += 1
        if self._journal is not None:
            self._journal(lid, record)
        return LogEntry(lid, record)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def get(self, lid: int) -> LogEntry:
        """Read the record at ``lid``; raises on gaps, GC'd, or unknown LIds."""
        if lid < self._truncated_below:
            raise GarbageCollectedError(lid, self._truncated_below)
        record = self._entries.get(lid)
        if record is None:
            if lid <= self._max_lid:
                raise GapError(lid)
            raise LidOutOfRangeError(lid, self._max_lid)
        return LogEntry(lid, record)

    def try_get(self, lid: int) -> Optional[LogEntry]:
        """Like :meth:`get` but returns ``None`` instead of raising."""
        record = self._entries.get(lid)
        if record is None:
            return None
        return LogEntry(lid, record)

    def has(self, lid: int) -> bool:
        return lid in self._entries

    def has_record(self, rid: RecordId) -> bool:
        return rid in self._by_rid

    def lid_of(self, rid: RecordId) -> Optional[int]:
        return self._by_rid.get(rid)

    def read(self, rules: ReadRules) -> List[LogEntry]:
        """Rule-based scan honoring limit/most-recent semantics (§3 Read)."""
        lids: Iterator[int]
        if rules.tag_key is not None:
            candidate = self._tag_index.get(rules.tag_key, [])
            lids = iter(sorted(candidate, reverse=rules.most_recent))
        else:
            span = range(self._truncated_below, self._max_lid + 1)
            lids = iter(reversed(span)) if rules.most_recent else iter(span)
        matches: List[LogEntry] = []
        for lid in lids:
            record = self._entries.get(lid)
            if record is None:
                continue
            entry = LogEntry(lid, record)
            if rules.matches(entry):
                matches.append(entry)
                if rules.limit is not None and len(matches) >= rules.limit:
                    break
        return matches

    def scan(self, start: int = 0, end: Optional[int] = None) -> List[LogEntry]:
        """Dense scan of ``[start, end]``; raises :class:`GapError` on holes."""
        upper = self._max_lid if end is None else end
        out = []
        for lid in range(max(start, self._truncated_below), upper + 1):
            out.append(self.get(lid))
        return out

    def entries(self) -> List[LogEntry]:
        """All present entries in LId order (gaps skipped)."""
        return [LogEntry(lid, self._entries[lid]) for lid in sorted(self._entries)]

    def records(self) -> List[Record]:
        return [entry.record for entry in self.entries()]

    # ------------------------------------------------------------------ #
    # State queries
    # ------------------------------------------------------------------ #

    @property
    def max_lid(self) -> int:
        """Highest filled position; -1 when empty."""
        return self._max_lid

    @property
    def contiguous_upto(self) -> int:
        """Highest L such that every position in ``[truncated, L]`` is filled."""
        return self._contiguous_upto

    @property
    def truncated_below(self) -> int:
        return self._truncated_below

    def gaps(self) -> List[int]:
        """Unfilled positions below ``max_lid`` (diagnostics/tests)."""
        return [
            lid
            for lid in range(self._truncated_below, self._max_lid)
            if lid not in self._entries
        ]

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #

    def truncate_below(self, lid: int) -> int:
        """Discard every entry with LId strictly below ``lid``.

        Returns the number of entries dropped.  Only contiguously-filled
        prefixes may be truncated (you cannot GC past a gap).
        """
        lid = min(lid, self._contiguous_upto + 1)
        dropped = 0
        for victim in range(self._truncated_below, lid):
            record = self._entries.pop(victim, None)
            if record is not None:
                self._by_rid.pop(record.rid, None)
                for key, _value in record.tags:
                    bucket = self._tag_index.get(key)
                    if bucket is not None:
                        try:
                            bucket.remove(victim)
                        except ValueError:  # pragma: no cover - defensive
                            pass
                dropped += 1
        if lid > self._truncated_below:
            self._truncated_below = lid
        if self._contiguous_upto < self._truncated_below - 1:
            self._contiguous_upto = self._truncated_below - 1
        return dropped
