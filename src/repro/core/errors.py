"""Exception hierarchy for the Chariots reproduction.

All library errors derive from :class:`ChariotsError` so callers can catch a
single base class at API boundaries.  Subclasses are grouped by the subsystem
that raises them, but they live in ``core`` so every layer (FLStore, the
Chariots pipeline, applications) can share them without import cycles.
"""

from __future__ import annotations


class ChariotsError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ChariotsError):
    """An invalid configuration value was supplied."""


class LogError(ChariotsError):
    """Base class for shared-log storage errors."""


class LidOutOfRangeError(LogError):
    """A log position was requested outside the log's current bounds."""

    def __init__(self, lid: int, head: int) -> None:
        super().__init__(f"LId {lid} is beyond the head of the log ({head})")
        self.lid = lid
        self.head = head


class GapError(LogError):
    """A read touched a log position that is still a gap.

    FLStore guarantees that clients never *observe* gaps; internally this is
    raised when a reader asks for a position at or below the reported head of
    the log that the owning maintainer has not yet filled, which indicates a
    protocol violation (the head-of-log gossip said the position was safe).
    """

    def __init__(self, lid: int) -> None:
        super().__init__(f"log position {lid} is an unfilled gap")
        self.lid = lid


class ImmutabilityError(LogError):
    """An attempt was made to overwrite an already-persisted record."""

    def __init__(self, lid: int) -> None:
        super().__init__(f"log position {lid} already holds a record; records are immutable")
        self.lid = lid


class NotOwnerError(LogError):
    """A maintainer was asked to serve a log position it does not own."""

    def __init__(self, lid: int, maintainer: str) -> None:
        super().__init__(f"maintainer {maintainer!r} does not own LId {lid}")
        self.lid = lid
        self.maintainer = maintainer


class GarbageCollectedError(LogError):
    """A read touched a log position that has been garbage collected."""

    def __init__(self, lid: int, frontier: int) -> None:
        super().__init__(f"LId {lid} was garbage collected (frontier is {frontier})")
        self.lid = lid
        self.frontier = frontier


class CausalityError(ChariotsError):
    """A causal-ordering invariant was violated (or would be violated)."""


class DependencyUnsatisfiedError(CausalityError):
    """A record was incorporated before one of its causal dependencies."""

    def __init__(self, record_id: object, missing: object) -> None:
        super().__init__(f"record {record_id} incorporated before dependency {missing}")
        self.record_id = record_id
        self.missing = missing


class DuplicateRecordError(ChariotsError):
    """The same (host datacenter, TOId) pair was admitted twice."""

    def __init__(self, record_id: object) -> None:
        super().__init__(f"duplicate record {record_id} admitted past the filter stage")
        self.record_id = record_id


class SessionError(ChariotsError):
    """A client operation was attempted without a valid session."""


class AppendDeferred(ChariotsError):
    """An explicit-order append could not be placed yet (§5.4).

    The maintainer deferred the request because its minimum-LId bound is not
    yet satisfiable.  Nothing was stored, so retrying the same request later
    is safe — retry policies treat this as always-retryable.
    """

    def __init__(self, min_lid: object = None) -> None:
        detail = f" (min_lid={min_lid})" if min_lid is not None else ""
        super().__init__(f"append deferred on its minimum-LId bound{detail}; retry later")
        self.min_lid = min_lid


class CircuitOpenError(ChariotsError):
    """A request was refused because the peer's circuit breaker is open.

    The peer has failed repeatedly and is in its cooldown window; callers
    should shed load or fail over rather than queue behind a dead node.
    """

    def __init__(self, peer: str) -> None:
        super().__init__(f"circuit breaker open for peer {peer!r}; request refused")
        self.peer = peer


class TransactionAborted(ChariotsError):
    """A transaction failed conflict detection and was aborted.

    Raised by the Message Futures and Helios commit protocols.
    """

    def __init__(self, txn_id: object, reason: str = "write-write conflict") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class RuntimeExhaustedError(ChariotsError):
    """The runtime stopped before a requested condition became true."""


class NetworkProtocolError(ChariotsError):
    """A malformed frame or message was received on the wire."""
