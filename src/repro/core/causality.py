"""Causal-ordering primitives (§3 "Causality and log order", §6.1).

Causality in Chariots is tracked per *host datacenter* rather than per
record: a datacenter's knowledge is summarised by a vector
``{datacenter: max TOId incorporated}``.  Because records from one host form
a total order (TOIds are dense), knowing "A up to TOId 7" means every record
``<A, t≤7>`` is known.  This module provides:

* :class:`CausalFrontier` — a mutable knowledge vector with the admission
  test used by the abstract solution and the queue stage;
* :class:`DeferredQueue` — the priority queue of records whose dependencies
  are not yet satisfied (§6.1 step 5, Figure 5);
* :func:`causal_order_respected` — the checker used throughout the test
  suite to validate that a log ordering is causally consistent.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .errors import DuplicateRecordError
from .record import DatacenterId, KnowledgeVector, Record, RecordId


class CausalFrontier:
    """A datacenter's extent of knowledge: max contiguous TOId per host.

    The frontier only ever advances by exactly one record at a time per host
    (TOIds are dense), which is what makes the vector summary sound.
    """

    def __init__(self, initial: Optional[KnowledgeVector] = None) -> None:
        self._max_toid: Dict[DatacenterId, int] = dict(initial or {})

    def known(self, rid: RecordId) -> bool:
        """Whether the record identified by ``rid`` has been incorporated."""
        return self._max_toid.get(rid.host, 0) >= rid.toid

    def max_toid(self, host: DatacenterId) -> int:
        """Highest TOId incorporated from ``host`` (0 if none)."""
        return self._max_toid.get(host, 0)

    def admissible(self, record: Record) -> bool:
        """Admission test for a record (§6.2, Queues).

        A record may be incorporated when (a) it is the *next* record from
        its host — preserving the per-host total order — and (b) every causal
        dependency is already incorporated.
        """
        if self._max_toid.get(record.host, 0) != record.toid - 1:
            return False
        for host, toid in record.dep_vector().items():
            if host == record.host:
                continue  # covered by the next-record test above
            if self._max_toid.get(host, 0) < toid:
                return False
        return True

    def is_duplicate(self, record: Record) -> bool:
        """Whether the record has already been incorporated."""
        return self._max_toid.get(record.host, 0) >= record.toid

    def advance(self, record: Record) -> None:
        """Mark ``record`` incorporated.  Caller must check admissibility."""
        self._max_toid[record.host] = record.toid

    def advance_host(self, host: DatacenterId, toid: int) -> None:
        """Bulk advance: every record from ``host`` up to ``toid`` is now
        incorporated.  Caller must guarantee the records exist and were
        admitted in order (the queue stage's draft batch does)."""
        self._max_toid[host] = toid

    def snapshot(self) -> KnowledgeVector:
        """An immutable copy of the vector, for tokens and ATable updates."""
        return dict(self._max_toid)

    def dominates(self, other: "CausalFrontier") -> bool:
        """Whether this frontier knows at least everything ``other`` does."""
        for host, toid in other._max_toid.items():
            if self._max_toid.get(host, 0) < toid:
                return False
        return True

    def copy(self) -> "CausalFrontier":
        return CausalFrontier(self._max_toid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalFrontier):
            return NotImplemented
        mine = {h: t for h, t in self._max_toid.items() if t}
        theirs = {h: t for h, t in other._max_toid.items() if t}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CausalFrontier({self._max_toid!r})"


class DeferredQueue:
    """Priority queue of records awaiting their causal dependencies.

    Ordered by ``(host, toid)`` so that, per host, records drain in total
    order.  :meth:`drain` repeatedly releases every record whose dependencies
    a frontier now satisfies, advancing the frontier as it goes — this is the
    "check the priority queue frequently" loop of §6.1 (Figure 5, step 3).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[DatacenterId, int, Record]] = []
        self._pending: Set[RecordId] = set()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, record: Record) -> None:
        """Park a record whose dependencies are not yet satisfied."""
        if record.rid in self._pending:
            raise DuplicateRecordError(record.rid)
        self._pending.add(record.rid)
        heapq.heappush(self._heap, (record.host, record.toid, record))

    def __contains__(self, rid: RecordId) -> bool:
        return rid in self._pending

    def drain(self, frontier: CausalFrontier) -> List[Record]:
        """Release every deferred record the frontier can now admit.

        Advances ``frontier`` for each released record and keeps sweeping
        until a full pass releases nothing (release of one record can unlock
        another with a cross-host dependency on it).
        """
        released: List[Record] = []
        progress = True
        while progress and self._heap:
            progress = False
            still_deferred: List[Tuple[DatacenterId, int, Record]] = []
            while self._heap:
                host, toid, record = heapq.heappop(self._heap)
                if frontier.admissible(record):
                    frontier.advance(record)
                    self._pending.discard(record.rid)
                    released.append(record)
                    progress = True
                elif frontier.is_duplicate(record):
                    # Already incorporated through another path; drop.
                    self._pending.discard(record.rid)
                    progress = True
                else:
                    still_deferred.append((host, toid, record))
            for item in still_deferred:
                heapq.heappush(self._heap, item)
        return released

    def peek_all(self) -> List[Record]:
        """Records currently parked, in heap order (for token shipping)."""
        return [record for _, _, record in sorted(self._heap)]


def happened_before(earlier: Record, later: Record) -> bool:
    """Direct causal relation check: ``earlier → later`` (non-transitive).

    True when both records share a host and ``earlier`` precedes ``later``
    in the host's total order, or when ``later``'s dependency vector covers
    ``earlier``.
    """
    if earlier.host == later.host:
        return earlier.toid < later.toid
    return later.depends_on(earlier.rid)


def causal_order_respected(records: Sequence[Record]) -> bool:
    """Validate that a sequence of records is a causally consistent order.

    Checks, for each record in turn, that the prefix before it contains the
    record's full dependency set and the host predecessor.  Because the
    dependency vectors are transitive summaries, prefix-closure under the
    vector test implies transitive causal consistency.
    """
    frontier = CausalFrontier()
    for record in records:
        if not frontier.admissible(record):
            return False
        frontier.advance(record)
    return True


def first_violation(records: Sequence[Record]) -> Optional[RecordId]:
    """The rid of the first record that breaks causal order, if any."""
    frontier = CausalFrontier()
    for record in records:
        if not frontier.admissible(record):
            return record.rid
        frontier.advance(record)
    return None


def topological_causal_sort(records: Iterable[Record]) -> List[Record]:
    """Produce *some* causally consistent order of ``records``.

    Deterministic (ties broken by ``(host, toid)``), used by tests to build
    reference orderings.  Raises ``ValueError`` if no causal order exists
    (a dependency is missing from the input set).
    """
    deferred = DeferredQueue()
    for record in records:
        deferred.push(record)
    frontier = CausalFrontier()
    ordered = deferred.drain(frontier)
    if len(deferred):
        missing = deferred.peek_all()[0]
        raise ValueError(
            f"no causal order exists: {missing.rid} has unsatisfiable dependencies"
        )
    return ordered
