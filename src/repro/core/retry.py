"""Resilience policies: retry with capped exponential backoff, circuit breakers.

The paper counts "handling component and whole datacenter failures" among the
challenges Chariots addresses (§1).  These are the shared mechanisms every
layer uses to do that systematically instead of ad hoc:

* :class:`RetryPolicy` — capped exponential backoff with seeded jitter and an
  optional per-operation timeout.  The asyncio FLStore client retries
  idempotent requests and deferred appends through it, and replication
  senders derive their retransmission schedule from it (replacing the old
  fixed retransmit constant).
* :class:`CircuitBreaker` — per-peer closed → open → half-open breaker.  After
  ``failure_threshold`` consecutive failures the peer is considered down and
  traffic stops; after ``reset_timeout`` a single probe is allowed through,
  and its outcome closes or re-opens the breaker.  This is what lets a sender
  stop hammering a partitioned datacenter and still catch up promptly once
  the partition heals.

Both are clock-agnostic: callers pass ``now`` explicitly, so the same breaker
runs under simulated time (actor runtimes) and wall-clock time (asyncio).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from .errors import ConfigurationError

_INF = float("inf")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter.

    Attempt ``n`` (0-based) waits ``min(max_delay, base_delay * multiplier**n)``
    seconds, scaled by a uniform ±``jitter`` fraction when an ``rng`` is
    supplied — jitter desynchronises retry storms without sacrificing
    determinism (callers seed the rng).
    """

    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: ±fraction of the delay added as seeded noise (0 disables jitter).
    jitter: float = 0.1
    max_attempts: int = 6
    #: Seconds an individual attempt may take before it counts as failed
    #: (``None`` = wait forever; only the asyncio layer enforces this).
    op_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ConfigurationError("base_delay must be positive")
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retrying after the ``attempt``-th failure (0-based)."""
        base = min(self.max_delay, self.base_delay * self.multiplier ** max(0, attempt))
        if self.jitter and rng is not None:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` waits)."""
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt, rng)


class CircuitBreaker:
    """A per-peer closed → open → half-open circuit breaker.

    * **closed** — traffic flows; consecutive failures are counted.
    * **open** — after ``failure_threshold`` consecutive failures, every
      ``allow`` is refused until ``reset_timeout`` seconds have passed.
    * **half-open** — one probe is allowed through; success closes the
      breaker, failure re-opens it (and restarts the cooldown).

    Time is explicit (``now``) so the breaker works under both simulated and
    wall-clock time.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = ("failure_threshold", "reset_timeout", "state", "failures",
                 "opened_at", "opens", "probes")

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 2.0) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ConfigurationError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = -_INF
        #: Diagnostics: how often the breaker tripped / probed.
        self.opens = 0
        self.probes = 0

    def allow(self, now: float) -> bool:
        """May a request be issued at time ``now``?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self.state = self.HALF_OPEN
                self.probes += 1
                return True  # the single half-open probe
            return False
        return False  # half-open: probe already in flight

    def record_success(self, now: float = 0.0) -> None:
        self.state = self.CLOSED
        self.failures = 0

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.failure_threshold:
            if self.state != self.OPEN:
                self.opens += 1
            self.state = self.OPEN
            self.opened_at = now
            self.failures = 0
