"""The Awareness Table (ATable) of §6.1, inspired by Replicated Dictionary.

For ``n`` datacenters the ATable at datacenter ``A`` is an ``n × n`` matrix
``T_A`` of TOIds.  ``T_A[B, C] = t`` means *A is certain that B knows about
all records generated at host datacenter C up to TOId t*.

The table drives two mechanisms:

* **Propagation filtering** — when A sends its log to B it only ships
  records ``r`` with ``TOId(r) > T_A[B, host(r)]`` (§6.1, "Propagate").
* **Garbage collection** — a record ``r`` may be collected at A once every
  datacenter knows it: ``∀j: T_A[j, host(r)] ≥ TOId(r)`` (§6.1,
  "Garbage collection").
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .errors import ConfigurationError
from .record import DatacenterId, KnowledgeVector, RecordId


class AwarenessTable:
    """Mutable n×n awareness matrix for one datacenter."""

    def __init__(self, self_id: DatacenterId, datacenters: Iterable[DatacenterId]) -> None:
        self.self_id = self_id
        self.datacenters: List[DatacenterId] = sorted(set(datacenters))
        if self_id not in self.datacenters:
            raise ConfigurationError(
                f"datacenter {self_id!r} missing from member list {self.datacenters}"
            )
        self._table: Dict[DatacenterId, Dict[DatacenterId, int]] = {
            row: {col: 0 for col in self.datacenters} for row in self.datacenters
        }

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def get(self, knower: DatacenterId, host: DatacenterId) -> int:
        """``T[knower, host]``: what ``knower`` knows of ``host``'s records."""
        return self._table[knower][host]

    def self_row(self) -> KnowledgeVector:
        """This datacenter's own knowledge vector ``T[self, *]``."""
        return dict(self._table[self.self_id])

    def row(self, knower: DatacenterId) -> KnowledgeVector:
        return dict(self._table[knower])

    def as_matrix(self) -> Dict[DatacenterId, Dict[DatacenterId, int]]:
        """Deep copy of the whole table (for snapshots sent over the wire)."""
        return {row: dict(cols) for row, cols in self._table.items()}

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def record_appended(self, toid: int) -> None:
        """A local append happened: set ``T[self, self] = toid`` (§6.1 Append)."""
        current = self._table[self.self_id][self.self_id]
        if toid != current + 1:
            raise ConfigurationError(
                f"local TOIds must be dense: expected {current + 1}, got {toid}"
            )
        self._table[self.self_id][self.self_id] = toid

    def record_incorporated(self, rid: RecordId) -> None:
        """An external record was added to the local log (§6.1 Reception)."""
        row = self._table[self.self_id]
        if rid.toid > row[rid.host]:
            row[rid.host] = rid.toid

    def merge(self, sender: DatacenterId, remote_matrix: Dict[DatacenterId, Dict[DatacenterId, int]]) -> None:
        """Incorporate the ATable snapshot received from ``sender``.

        Every cell is advanced to the element-wise maximum — awareness is
        monotone.  Additionally, the sender's *own* row tells us directly
        what the sender knows, which keeps ``T[sender, *]`` fresh even if
        the snapshot's other rows are stale.
        """
        for row_dc, cols in remote_matrix.items():
            if row_dc not in self._table:
                continue
            mine = self._table[row_dc]
            for col_dc, toid in cols.items():
                if col_dc in mine and toid > mine[col_dc]:
                    mine[col_dc] = toid

    def note_peer_knowledge(self, peer: DatacenterId, vector: KnowledgeVector) -> None:
        """Advance ``T[peer, *]`` from an explicit knowledge vector."""
        row = self._table[peer]
        for host, toid in vector.items():
            if host in row and toid > row[host]:
                row[host] = toid

    # ------------------------------------------------------------------ #
    # Derived queries
    # ------------------------------------------------------------------ #

    def peer_knows(self, peer: DatacenterId, rid: RecordId) -> bool:
        """Whether ``peer`` is known to have record ``rid`` (§6.1 Propagate)."""
        return self._table[peer][rid.host] >= rid.toid

    def gc_frontier(self, host: DatacenterId) -> int:
        """Highest TOId of ``host`` known by *every* datacenter.

        Records from ``host`` with TOId at or below this value are safe to
        garbage collect locally.
        """
        return min(self._table[knower][host] for knower in self.datacenters)

    def gc_vector(self) -> KnowledgeVector:
        """GC frontier for every host datacenter at once."""
        return {host: self.gc_frontier(host) for host in self.datacenters}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AwarenessTable):
            return NotImplemented
        return self._table == other._table and self.self_id == other.self_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AwarenessTable(self={self.self_id!r}, table={self._table!r})"
