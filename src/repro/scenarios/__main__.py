"""Command-line front end for the scenario catalog.

::

    python -m repro.scenarios list [--tag TAG]... [--deterministic]
    python -m repro.scenarios show NAME
    python -m repro.scenarios run [NAME]... [--tag TAG]... [--deterministic]
                                  [--run-root DIR | --no-persist]
                                  [--compare] [--baseline-root DIR]
    python -m repro.scenarios compare NAME [--run-id ID]
                                  [--run-root DIR] [--baseline-root DIR]

``run`` executes the selected entries through the phased runner,
persisting artifacts under ``<run-root>/<scenario>/<run-id>/`` and exits
non-zero if any scenario errors, breaks an invariant, or (with
``--compare``) drifts outside a baseline tolerance band.  ``compare``
re-checks an already-persisted run against the committed ``BENCH_*.json``
baselines without re-running anything.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import catalog
from .compare import compare_run_dir
from .runner import ScenarioRunner, latest_run_dir
from .spec import RUNTIMES, ScenarioSpec


def _select(args: argparse.Namespace) -> List[ScenarioSpec]:
    deterministic = True if getattr(args, "deterministic", False) else None
    specs = catalog.select(
        tags=args.tag,
        names_filter=getattr(args, "names", []),
        deterministic=deterministic,
        runtime=getattr(args, "runtime", None),
    )
    known = set(catalog.names())
    for name in getattr(args, "names", []):
        if name not in known:
            raise SystemExit(f"unknown scenario {name!r} (try `list`)")
    return specs


def _cmd_list(args: argparse.Namespace) -> int:
    specs = _select(args)
    if not specs:
        print("no scenarios match")
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        tags = ",".join(spec.tags) or "-"
        print(f"{spec.name:<{width}}  {spec.kind:<10} {spec.runtime:<5} "
              f"{tags:<24} {spec.title}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(catalog.get(args.name).to_json(), end="")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    specs = _select(args)
    if not specs:
        print("no scenarios match")
        return 1
    run_root: Optional[Path] = None if args.no_persist else Path(args.run_root)
    runner = ScenarioRunner(run_root=run_root)
    baseline_root = Path(args.baseline_root)
    failures = 0
    for spec in specs:
        result = runner.run(spec)
        where = f"  -> {result.artifacts_dir}" if result.artifacts_dir else ""
        print(f"{spec.name}: {result.status}{where}")
        if result.error:
            print(f"  error: {result.error}")
        for message in result.invariant_failures:
            print(f"  invariant: {message}")
        if not result.passed:
            failures += 1
            continue
        if args.compare and spec.baselines:
            comparison = compare_run_dir(
                spec, result.artifacts_dir, baseline_root
            ) if result.artifacts_dir else None
            if comparison is None:
                print("  compare skipped: no persisted artifacts")
                continue
            print("  " + comparison.render().replace("\n", "\n  "))
            if not comparison.passed:
                failures += 1
    print(f"{len(specs) - failures}/{len(specs)} scenarios passed")
    return 1 if failures else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = catalog.get(args.name)
    if not spec.baselines:
        print(f"{spec.name} declares no baseline checks")
        return 1
    scenario_dir = Path(args.run_root) / spec.name
    run_dir = (
        scenario_dir / args.run_id if args.run_id else latest_run_dir(scenario_dir)
    )
    if run_dir is None or not run_dir.is_dir():
        print(f"no persisted runs under {scenario_dir} (run it first)")
        return 1
    comparison = compare_run_dir(spec, run_dir, Path(args.baseline_root))
    print(comparison.render())
    return 0 if comparison.passed else 1


def _add_filters(parser: argparse.ArgumentParser, with_names: bool = True) -> None:
    if with_names:
        parser.add_argument("names", nargs="*", help="scenario names (default: all)")
    parser.add_argument("--tag", action="append", default=[],
                        help="require this tag (repeatable, ANDed)")
    parser.add_argument("--deterministic", action="store_true",
                        help="only seeded sim/local scenarios")
    parser.add_argument("--runtime", default=None, choices=RUNTIMES,
                        help="only scenarios on this runtime")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run and check the declarative scenario catalog.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list catalog entries")
    _add_filters(p_list, with_names=False)
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="print one spec as JSON")
    p_show.add_argument("name")
    p_show.set_defaults(func=_cmd_show)

    p_run = sub.add_parser("run", help="run scenarios and check invariants")
    _add_filters(p_run)
    p_run.add_argument("--run-root", default="runs",
                       help="artifact directory (default: runs/)")
    p_run.add_argument("--no-persist", action="store_true",
                       help="run in-memory, write no artifacts")
    p_run.add_argument("--compare", action="store_true",
                       help="also diff persisted runs against BENCH_*.json")
    p_run.add_argument("--baseline-root", default=".",
                       help="directory holding the BENCH_*.json baselines")
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="diff a persisted run vs baselines")
    p_cmp.add_argument("name")
    p_cmp.add_argument("--run-id", default=None,
                       help="run id (default: the latest run)")
    p_cmp.add_argument("--run-root", default="runs")
    p_cmp.add_argument("--baseline-root", default=".")
    p_cmp.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
