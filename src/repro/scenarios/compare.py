"""Compare a run's metrics against the committed ``BENCH_*.json`` trajectory.

Each :class:`~repro.scenarios.spec.BaselineCheck` on a spec names one
metric in a run document (``aggregates.json`` or ``perf.json``), one value
in a committed baseline file, and a tolerance:

* ``rel_tol`` / ``abs_tol`` — tight bands for deterministic simulated
  metrics (``rel_tol=0`` means exact equality);
* ``ratio_band`` — wide multiplicative bands for host-measured numbers
  (ops/sec differ across machines; a 10× band still catches a hot path
  collapsing or a speedup inverting).

The result renders as a readable diff::

    metric                                   actual     baseline   band            status
    points.0.records_stored                  101000     101000     rel<=0.0        ok
    base.records_per_host_sec                95321      111679     ratio[0.2,5.0]  ok
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.errors import ConfigurationError
from .spec import BaselineCheck, ScenarioSpec, resolve_path


@dataclass
class CheckOutcome:
    check: BaselineCheck
    actual: Any = None
    expected: Any = None
    ok: bool = False
    detail: str = ""

    @property
    def band_label(self) -> str:
        if self.check.rel_tol is not None:
            return f"rel<={self.check.rel_tol}"
        if self.check.abs_tol is not None:
            return f"abs<={self.check.abs_tol}"
        lo, hi = self.check.ratio_band  # type: ignore[misc]
        return f"ratio[{lo},{hi}]"

    def row(self) -> str:
        status = "ok" if self.ok else "FAIL"
        note = f"  {self.detail}" if self.detail and not self.ok else ""
        return (
            f"{self.check.metric:<42} {self.actual!s:>12} {self.expected!s:>12} "
            f"{self.band_label:<16} {status}{note}"
        )


@dataclass
class ComparisonResult:
    scenario: str
    outcomes: List[CheckOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> List[CheckOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def render(self) -> str:
        lines = [
            f"baseline comparison — {self.scenario}: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({len(self.outcomes) - len(self.failures)}/{len(self.outcomes)} checks ok)",
            f"{'metric':<42} {'actual':>12} {'baseline':>12} {'band':<16} status",
        ]
        lines.extend(outcome.row() for outcome in self.outcomes)
        return "\n".join(lines)


def _within(check: BaselineCheck, actual: float, expected: float) -> "tuple[bool, str]":
    if check.rel_tol is not None:
        bound = check.rel_tol * abs(expected)
        ok = abs(actual - expected) <= bound
        return ok, "" if ok else f"|Δ|={abs(actual - expected):g} > {bound:g}"
    if check.abs_tol is not None:
        ok = abs(actual - expected) <= check.abs_tol
        return ok, "" if ok else f"|Δ|={abs(actual - expected):g} > {check.abs_tol:g}"
    lo, hi = check.ratio_band  # type: ignore[misc]
    if expected == 0:
        return actual == 0, "baseline is 0"
    ratio = actual / expected
    ok = lo <= ratio <= hi
    return ok, "" if ok else f"ratio={ratio:.3f} outside [{lo}, {hi}]"


def compare_documents(
    spec: ScenarioSpec,
    aggregates: Dict[str, Any],
    perf: Dict[str, Any],
    baseline_root: Path,
) -> ComparisonResult:
    """Evaluate every baseline check of ``spec`` against loaded run docs."""
    result = ComparisonResult(scenario=spec.name)
    baselines: Dict[str, Any] = {}
    for check in spec.baselines:
        outcome = CheckOutcome(check=check)
        result.outcomes.append(outcome)
        if check.file not in baselines:
            path = baseline_root / check.file
            if not path.is_file():
                outcome.detail = f"baseline file {path} missing"
                continue
            baselines[check.file] = json.loads(path.read_text())
        document = aggregates if check.source == "aggregates" else perf
        try:
            outcome.actual = resolve_path(document, check.metric)
        except KeyError as exc:
            outcome.detail = f"run metric missing: {exc.args[0]}"
            continue
        try:
            outcome.expected = resolve_path(baselines[check.file], check.baseline_path)
        except KeyError as exc:
            outcome.detail = f"baseline value missing: {exc.args[0]}"
            continue
        try:
            outcome.ok, outcome.detail = _within(
                check, float(outcome.actual), float(outcome.expected)
            )
        except (TypeError, ValueError):
            outcome.ok = outcome.actual == outcome.expected
            if not outcome.ok:
                outcome.detail = "non-numeric values differ"
    return result


def compare_run_dir(
    spec: ScenarioSpec, run_dir: Path, baseline_root: Path
) -> ComparisonResult:
    """Compare one persisted run's artifacts against the baselines."""
    aggregates_path = run_dir / "aggregates.json"
    if not aggregates_path.is_file():
        raise ConfigurationError(f"no aggregates.json under {run_dir}")
    aggregates = json.loads(aggregates_path.read_text())
    perf_path = run_dir / "perf.json"
    perf = json.loads(perf_path.read_text()) if perf_path.is_file() else {}
    return compare_documents(spec, aggregates, perf, baseline_root)
