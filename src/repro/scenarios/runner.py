"""Phased scenario runner: standup → experiment → teardown, with artifacts.

Every run of a scenario persists a self-describing artifact directory::

    runs/<scenario>/<run-id>/
        spec.json          the exact spec that ran (round-trips losslessly)
        aggregates.json    deterministic simulated metrics (sorted keys)
        perf.json          host-measured numbers, when the kind records any
        timeseries.json    per-point throughput timeseries, when captured
        run.json           phase statuses, invariant failures, verdict

``aggregates.json`` is the regression surface: it contains only simulated,
seeded metrics, so running the same deterministic spec twice produces
byte-identical files.  Host wall-clock measurements are quarantined in
``perf.json`` and only ever compared with wide tolerance bands.

Run ids are sequential (``run-0001``, ``run-0002``, …) rather than
timestamps — artifact trees stay reproducible and diffable.

The teardown phase always runs: a failing experiment still releases its
resources and still writes ``run.json`` recording what happened.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .executors import executor_for
from .spec import ScenarioSpec, check_invariants

_RUN_ID = re.compile(r"^run-(\d+)$")


class ScenarioError(Exception):
    """A scenario failed: its experiment raised or an invariant broke."""

    def __init__(self, message: str, result: "RunResult") -> None:
        super().__init__(message)
        self.result = result


@dataclass
class PhaseStatus:
    name: str
    status: str  # "ok" | "failed" | "skipped"
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "status": self.status}
        if self.error is not None:
            data["error"] = self.error
        return data


@dataclass
class RunResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    run_id: str
    phases: List[PhaseStatus] = field(default_factory=list)
    aggregates: Dict[str, Any] = field(default_factory=dict)
    perf: Dict[str, Any] = field(default_factory=dict)
    timeseries: Dict[str, Any] = field(default_factory=dict)
    invariant_failures: List[str] = field(default_factory=list)
    error: Optional[str] = None
    artifacts_dir: Optional[Path] = None

    @property
    def status(self) -> str:
        if self.error is not None:
            return "error"
        if self.invariant_failures:
            return "failed"
        return "passed"

    @property
    def passed(self) -> bool:
        return self.status == "passed"

    def phase(self, name: str) -> Optional[PhaseStatus]:
        for phase in self.phases:
            if phase.name == name:
                return phase
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.name,
            "run_id": self.run_id,
            "status": self.status,
            "phases": [phase.to_dict() for phase in self.phases],
            "invariant_failures": list(self.invariant_failures),
            "error": self.error,
        }


def _write_json(path: Path, payload: Any) -> None:
    """Deterministic serialisation: sorted keys, trailing newline."""
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n"
    )


def next_run_id(scenario_dir: Path) -> str:
    """The next sequential ``run-NNNN`` id under one scenario's directory."""
    highest = 0
    if scenario_dir.is_dir():
        for entry in scenario_dir.iterdir():
            match = _RUN_ID.match(entry.name)
            if match:
                highest = max(highest, int(match.group(1)))
    return f"run-{highest + 1:04d}"


def latest_run_dir(scenario_dir: Path) -> Optional[Path]:
    """The highest-numbered run directory, or None when none exist."""
    best: Optional[Path] = None
    best_index = -1
    if scenario_dir.is_dir():
        for entry in scenario_dir.iterdir():
            match = _RUN_ID.match(entry.name)
            if match and int(match.group(1)) > best_index:
                best, best_index = entry, int(match.group(1))
    return best


class ScenarioRunner:
    """Runs specs through the phase lifecycle and persists artifacts.

    ``run_root=None`` disables persistence entirely (the bench wrappers
    and unit tests run in-memory).
    """

    def __init__(self, run_root: Optional[Path] = Path("runs")) -> None:
        self.run_root = Path(run_root) if run_root is not None else None

    def run(
        self,
        spec: ScenarioSpec,
        run_id: Optional[str] = None,
        raise_on_failure: bool = False,
    ) -> RunResult:
        """Execute one spec: standup → experiment → teardown → invariants.

        Teardown always runs, and artifacts are always written, even when
        the experiment raises.  With ``raise_on_failure`` a failed run
        raises :class:`ScenarioError` (carrying the result) after artifacts
        are persisted; otherwise inspect :attr:`RunResult.status`.
        """
        scenario_dir = (
            self.run_root / spec.name if self.run_root is not None else None
        )
        if run_id is None:
            run_id = (
                next_run_id(scenario_dir) if scenario_dir is not None else "adhoc"
            )
        result = RunResult(spec=spec, run_id=run_id)
        executor = executor_for(spec)

        context = None
        try:
            context = executor.standup(spec)
            result.phases.append(PhaseStatus("standup", "ok"))
        except Exception as exc:
            result.phases.append(PhaseStatus("standup", "failed", repr(exc)))
            result.error = f"standup: {exc!r}"

        if context is not None:
            try:
                aggregates, perf = executor.experiment(context)
                result.aggregates = aggregates
                result.perf = perf
                result.timeseries = dict(context.timeseries)
                result.phases.append(PhaseStatus("experiment", "ok"))
            except Exception as exc:
                result.phases.append(PhaseStatus("experiment", "failed", repr(exc)))
                result.error = f"experiment: {exc!r}"
            finally:
                try:
                    executor.teardown(context)
                    result.phases.append(PhaseStatus("teardown", "ok"))
                except Exception as exc:  # noqa: BLE001 - recorded, not lost
                    result.phases.append(PhaseStatus("teardown", "failed", repr(exc)))
                    if result.error is None:
                        result.error = f"teardown: {exc!r}"
        else:
            result.phases.append(PhaseStatus("experiment", "skipped"))
            result.phases.append(PhaseStatus("teardown", "skipped"))

        if result.error is None:
            result.invariant_failures = check_invariants(spec, result.aggregates)

        if scenario_dir is not None:
            result.artifacts_dir = self._persist(scenario_dir / run_id, result)

        if raise_on_failure and not result.passed:
            detail = result.error or "; ".join(result.invariant_failures)
            raise ScenarioError(f"scenario {spec.name!r} {result.status}: {detail}", result)
        return result

    @staticmethod
    def _persist(run_dir: Path, result: RunResult) -> Path:
        run_dir.mkdir(parents=True, exist_ok=True)
        _write_json(run_dir / "spec.json", result.spec.to_dict())
        _write_json(run_dir / "aggregates.json", result.aggregates)
        if result.perf:
            _write_json(run_dir / "perf.json", result.perf)
        if result.timeseries:
            _write_json(run_dir / "timeseries.json", result.timeseries)
        _write_json(run_dir / "run.json", result.to_dict())
        return run_dir


def run_scenario(
    spec: ScenarioSpec,
    run_root: Optional[Path] = None,
    raise_on_failure: bool = True,
) -> RunResult:
    """One-shot convenience for tests and the bench wrappers (in-memory
    unless ``run_root`` is given)."""
    return ScenarioRunner(run_root=run_root).run(
        spec, raise_on_failure=raise_on_failure
    )
