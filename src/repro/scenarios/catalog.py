"""The scenario catalog: every experiment of the paper's evaluation — and
the repo's own soak/overload/chaos workloads — as declarative entries.

Figures 7–9 and Tables 2–5 are ``paper-figure`` entries whose invariants
encode the paper's qualitative claims (peak at 150 K, the batcher then the
filter becoming the bottleneck, near-linear FLStore scaling, the Figure 9
drain surge).  The bench scripts under ``benchmarks/`` are thin wrappers
over these entries, and the deterministic subset runs as a pytest
regression suite (``tests/test_scenarios_catalog.py``) — a paper claim
breaking fails ``make check``, not just a bench report.

Tags:

* ``paper-figure`` — a figure/table of §7; deterministic, invariant-checked.
* ``soak`` / ``chaos`` — seeded fault-plan runs (partitions, drops, dups).
* ``overload`` — offered load far past capacity, exercising the pipeline's
  high-water-mark backpressure limits.
* ``geo`` — multi-datacenter deployments over simulated WAN links.
* ``perf`` — host-performance runs compared against the committed
  ``BENCH_*.json`` trajectory with tolerance bands.
* ``ablation`` — parameter sweeps beyond the paper's own figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ConfigurationError
from .spec import BaselineCheck, Invariant, ScenarioSpec, TopologySpec, WorkloadSpec

__all__ = ["CATALOG", "get", "names", "by_tag", "select", "tags_in_use"]


def _fig7() -> ScenarioSpec:
    targets = [25_000, 50_000, 75_000, 100_000, 125_000, 150_000,
               175_000, 200_000, 250_000, 300_000]
    invariants: List[Invariant] = [
        # Below the knee, achieved tracks target (§7.1).
        Invariant(metric=f"points.{i}.achieved", op="approx",
                  other=f"points.{i}.target", rel=0.05,
                  note="below the knee achieved tracks target")
        for i in range(5)
    ]
    invariants += [
        Invariant(metric="best.target", op="eq", value=150_000,
                  note="maximum throughput at target 150K"),
        Invariant(metric="points.9.achieved", op="lt", other="points.5.achieved",
                  note="overload degrades past the peak"),
        Invariant(metric="points.9.achieved", op="approx", value=120_000, rel=0.08,
                  note="drops to around 120K appends per second"),
    ]
    return ScenarioSpec(
        name="fig7-single-maintainer",
        title="Figure 7: one public-cloud maintainer, achieved vs target",
        kind="flstore",
        tags=("paper-figure",),
        topology=TopologySpec(maintainers=1, profile="public-cloud"),
        workload=WorkloadSpec(target_rate=150_000, duration=1.2, warmup=0.4),
        sweep=tuple(
            {"label": f"target-{t // 1000}k", "workload": {"target_rate": t}}
            for t in targets
        ),
        invariants=tuple(invariants),
        source="benchmarks/bench_fig7_single_maintainer.py",
    )


def _fig8(slug: str, profile: str, target: float) -> ScenarioSpec:
    counts = [1, 2, 4, 6, 8, 10]
    return ScenarioSpec(
        name=f"fig8-scaling-{slug}",
        title=f"Figure 8: FLStore scaling — {profile}, target {target / 1000:.0f}K",
        kind="flstore",
        tags=("paper-figure",),
        topology=TopologySpec(maintainers=1, profile=profile),
        workload=WorkloadSpec(target_rate=target, duration=1.0, warmup=0.3),
        sweep=tuple(
            {"label": f"m{n}", "topology": {"maintainers": n}} for n in counts
        ),
        invariants=(
            Invariant(metric="points.5.scaling_fraction", op="gt", value=0.97,
                      note="99.3%/99.9% of perfect scaling at ten maintainers"),
            Invariant(metric="points.5.achieved", op="approx",
                      other="points.0.achieved", scale=10, rel=0.05,
                      note="ten maintainers achieve ten times one"),
        ),
        source="benchmarks/bench_fig8_flstore_scaling.py",
    )


def _fig9() -> ScenarioSpec:
    sources = ("A/client/0", "A/batcher/0", "A/queue/0")
    return ScenarioSpec(
        name="fig9-stage-timeseries",
        title="Figure 9: client/batcher/queue throughput over time (shared NIC)",
        kind="pipeline",
        tags=("paper-figure",),
        topology=TopologySpec(
            clients=2, batchers=2, profile="fig9-shared-nic", shared_nic=True
        ),
        workload=WorkloadSpec(
            target_rate=130_000,
            duration=1.5,
            warmup=0.2,
            total_records=240_000,
            run_past_load=2.0,
            timeseries_sources=sources,
            timeseries_bin=0.2,
            drain_probe=("A/client/0", "A/queue/0"),
        ),
        invariants=(
            Invariant(metric="points.0.records_stored", op="eq", value=240_000,
                      note="the fixed-size workload is fully stored"),
            Invariant(metric="points.0.drain.gap", op="gt", value=0.4,
                      note="latter stages outlast the clients"),
            Invariant(metric="points.0.drain.surge_ratio", op="gt", value=1.25,
                      note="abrupt queue surge once the filter NIC frees up"),
        ),
        source="benchmarks/bench_fig9_timeseries.py",
    )


_STAGES = ("Client", "Batcher", "Filter", "Queue", "Store")

#: Table 2/3 single-machine deployment and Table 4/5 widenings, as sweep
#: overrides (the paper's Tables 2–5 are sweeps over DeploymentSpec).
_BASIC = {"clients": 1, "batchers": 1, "filters": 1, "queues": 1,
          "maintainers": 1, "senders": 1, "receivers": 1}


def _table(name: str, title: str, source: str,
           sweep: Sequence[Dict[str, Dict[str, int]]],
           invariants: Sequence[Invariant]) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        title=title,
        kind="pipeline",
        tags=("paper-figure",),
        workload=WorkloadSpec(target_rate=130_000, duration=1.5, warmup=0.4),
        sweep=tuple(sweep),
        invariants=tuple(invariants),
        source=source,
    )


def _table2() -> ScenarioSpec:
    invariants = [
        Invariant(metric=f"points.0.stage_totals.{stage}", op="approx",
                  other="points.0.stage_totals.Client", rel=0.06,
                  note="all stages track the client rate (Table 2)")
        for stage in _STAGES[1:]
    ]
    invariants += [
        Invariant(metric="points.0.stage_totals.Client", op="between",
                  band=(120_000, 135_000), note="124-132K records/s per machine"),
        Invariant(metric="points.0.bottleneck", op="eq", value="Client",
                  note="the bottleneck is possibly due to the clients"),
    ]
    return _table(
        "table2-basic-pipeline",
        "Table 2: basic Chariots deployment, one machine per stage",
        "benchmarks/bench_table2_basic_pipeline.py",
        [{"label": "basic", "topology": dict(_BASIC)}],
        invariants,
    )


def _table3() -> ScenarioSpec:
    return _table(
        "table3-two-clients",
        "Table 3: two clients overload the single batcher",
        "benchmarks/bench_table3_two_clients.py",
        [
            {"label": "basic", "topology": dict(_BASIC)},
            {"label": "two-clients", "topology": {**_BASIC, "clients": 2}},
        ],
        [
            Invariant(metric="points.1.bottleneck", op="eq", value="Batcher",
                      note="the batcher is possibly the bottleneck"),
            Invariant(metric="points.1.stage_totals.Batcher", op="lt",
                      other="points.0.stage_totals.Batcher",
                      note="doubling offered load lowers batcher throughput"),
            Invariant(metric="points.1.stage_totals.Store", op="approx",
                      other="points.1.stage_totals.Batcher", rel=0.06,
                      note="downstream sees only what the batcher emits"),
        ],
    )


def _table4() -> ScenarioSpec:
    return _table(
        "table4-two-batchers",
        "Table 4: two clients + two batchers push the bottleneck to the filter",
        "benchmarks/bench_table4_two_batchers.py",
        [
            {"label": "one-batcher", "topology": {**_BASIC, "clients": 2}},
            {"label": "two-batchers", "topology": {**_BASIC, "clients": 2, "batchers": 2}},
        ],
        [
            Invariant(metric="points.1.bottleneck", op="eq", value="Filter",
                      note="now the bottleneck is pushed to the filter stage"),
            Invariant(metric="points.1.stage_totals.Batcher", op="gt",
                      other="points.0.stage_totals.Batcher", scale=1.8,
                      note="the batcher stage roughly doubled"),
            Invariant(metric="points.1.stage_totals.Filter", op="ratio_between",
                      other="points.1.stage_totals.Batcher", band=(0.4, 0.6),
                      note="latter stages run at almost half the batchers"),
            Invariant(metric="points.1.stage_totals.Filter", op="approx",
                      value=120_000, rel=0.08, note="filter absorbs ~120K"),
        ],
    )


def _table5() -> ScenarioSpec:
    doubled = {k: 2 for k in _BASIC}
    invariants = [
        Invariant(metric=f"points.1.stage_totals.{stage}", op="approx",
                  other=f"points.0.stage_totals.{stage}", scale=2, rel=0.08,
                  note="the throughput of each stage has doubled (Table 5)")
        for stage in _STAGES
    ]
    invariants += [
        Invariant(metric="points.1.stage_rates.Batcher.A/batcher/1", op="approx",
                  other="points.0.stage_totals.Batcher", rel=0.1,
                  note="each machine stays close to the basic single-machine rate"),
        Invariant(metric="points.1.stage_rates.Store.A/store/1", op="approx",
                  other="points.0.stage_totals.Store", rel=0.1,
                  note="each machine stays close to the basic single-machine rate"),
    ]
    return _table(
        "table5-two-per-stage",
        "Table 5: two machines at every stage — all stages scale",
        "benchmarks/bench_table5_two_per_stage.py",
        [
            {"label": "basic", "topology": dict(_BASIC)},
            {"label": "doubled", "topology": doubled},
        ],
        invariants,
    )


def _overload() -> ScenarioSpec:
    return ScenarioSpec(
        name="overload-backpressure",
        title="Overload: 3x offered load against one batcher with tight buffer limits",
        kind="pipeline",
        tags=("overload", "soak"),
        topology=TopologySpec(clients=3),
        workload=WorkloadSpec(target_rate=130_000, duration=1.2, warmup=0.4),
        # Tight high-water marks (PR 4's backpressure limits): the pipeline
        # must shed load at the batcher, not buffer without bound.
        pipeline={
            "batcher_flush_threshold": 500,
            "batcher_flush_interval": 0.002,
            "batcher_buffer_limit": 2000,
            "queue_buffer_limit": 4096,
            "sender_buffer_limit": 4096,
        },
        invariants=(
            Invariant(metric="points.0.bottleneck", op="eq", value="Batcher",
                      note="overload lands on the first funnel stage"),
            Invariant(metric="points.0.stage_totals.Batcher", op="lt",
                      other="points.0.stage_totals.Client", scale=0.5,
                      note="the batcher sheds most of the 3x offered load"),
            Invariant(metric="points.0.stage_totals.Store", op="approx",
                      other="points.0.stage_totals.Batcher", rel=0.06,
                      note="admitted records still flow through bounded buffers"),
            Invariant(metric="points.0.records_stored", op="gt", value=0),
        ),
        notes="Exercises batcher/queue/sender high-water marks under 3x load.",
    )


def _geo_replication_lag() -> ScenarioSpec:
    intervals = [0.005, 0.04, 0.16]
    return ScenarioSpec(
        name="geo-replication-lag",
        title="Geo: sender shipping interval vs replication lag (WAN RTT 60 ms)",
        kind="geo",
        tags=("geo", "ablation"),
        topology=TopologySpec(datacenters=("A", "B"), wan_rtt=0.060),
        workload=WorkloadSpec(
            target_rate=20_000, client_batch=200, total_records=10_000,
            duration=1.0, warmup=0.2, settle_seconds=5.0,
        ),
        sweep=tuple(
            {"label": f"ship-{round(i * 1000)}ms",
             "pipeline": {"replication_interval": i}}
            for i in intervals
        ),
        invariants=(
            Invariant(metric="points.2.lag_seconds", op="gt",
                      other="points.0.lag_seconds",
                      note="lag grows with the shipping interval"),
            Invariant(metric="points.0.lag_seconds", op="ge", value=0.015,
                      note="the WAN one-way latency is the floor"),
            Invariant(metric="points.0.converged", op="eq", value=True),
            Invariant(metric="points.2.converged", op="eq", value=True),
        ),
        source="benchmarks/bench_ablation_replication.py",
    )


def _geo_partition_soak() -> ScenarioSpec:
    return ScenarioSpec(
        name="geo-partition-soak",
        title="Geo soak: WAN partition during load, duplicates on heal, full catch-up",
        kind="geo",
        tags=("geo", "soak", "chaos"),
        topology=TopologySpec(datacenters=("A", "B"), wan_rtt=0.060),
        workload=WorkloadSpec(
            target_rate=10_000, client_batch=200, total_records=10_000,
            duration=1.0, warmup=0.2, settle_seconds=10.0,
        ),
        faults={
            "seed": 11,
            "rules": [
                # After the heal, the retransmission burst is stressed with
                # duplicated and reordered cross-datacenter deliveries.
                {"kind": "duplicate", "dst": "B/", "probability": 0.2,
                 "delay": 0.01, "start": 1.6},
                {"kind": "reorder", "dst": "B/", "probability": 0.3,
                 "delay": 0.02, "start": 1.6},
            ],
            "crashes": [],
            "partitions": [{"a": "A/", "b": "B/", "start": 0.2, "end": 1.6}],
        },
        invariants=(
            Invariant(metric="points.0.caught_up", op="eq", value=True,
                      note="the remote datacenter catches up after the heal"),
            Invariant(metric="points.0.converged", op="eq", value=True),
            Invariant(metric="points.0.records.B", op="eq",
                      other="points.0.records.A",
                      note="no records lost to the partition"),
            Invariant(metric="faults.partitioned", op="gt", value=0,
                      note="the partition actually severed traffic"),
        ),
        notes="Senders retransmit with backoff through a 1.4 s partition.",
    )


def _flstore_chaos_soak() -> ScenarioSpec:
    return ScenarioSpec(
        name="flstore-chaos-soak",
        title="Chaos soak: FLStore throughput under gossip drops and duplicates",
        kind="flstore",
        tags=("chaos", "soak"),
        topology=TopologySpec(maintainers=2, profile="private-cloud"),
        workload=WorkloadSpec(target_rate=100_000, duration=1.0, warmup=0.3),
        faults={
            "seed": 7,
            "rules": [
                {"kind": "delay", "dst": "store/", "probability": 0.05,
                 "delay": 0.002},
                {"kind": "duplicate", "message_type": "GossipHL",
                 "probability": 0.2, "delay": 0.01},
                {"kind": "drop", "message_type": "GossipHL", "probability": 0.1},
            ],
            "crashes": [],
            "partitions": [],
        },
        invariants=(
            Invariant(metric="points.0.achieved", op="approx", value=200_000,
                      rel=0.1, note="gossip faults are off the data path"),
            Invariant(metric="faults.dropped", op="gt", value=0),
            Invariant(metric="faults.duplicated", op="gt", value=0),
        ),
    )


def _corfu_ceiling() -> ScenarioSpec:
    return ScenarioSpec(
        name="corfu-sequencer-ceiling",
        title="Ablation: the CORFU-style sequencer caps cluster appends",
        kind="corfu",
        tags=("ablation",),
        topology=TopologySpec(units=1, profile="public-cloud",
                              sequencer_capacity=30_000.0, grant_batch=16),
        workload=WorkloadSpec(target_rate=125_000, duration=1.0, warmup=0.3),
        sweep=tuple(
            {"label": f"u{n}", "topology": {"units": n}} for n in (1, 4, 8)
        ),
        invariants=(
            Invariant(metric="points.0.achieved", op="approx", value=125_000,
                      rel=0.05, note="one unit is not sequencer-limited"),
            Invariant(metric="points.2.achieved", op="approx",
                      other="points.1.achieved", rel=0.02,
                      note="doubling units past saturation gains nothing"),
            Invariant(metric="points.2.achieved", op="lt",
                      other="points.2.target", scale=8,
                      note="the shared sequencer prevents linear scaling"),
        ),
        source="benchmarks/bench_ablation_corfu_vs_flstore.py",
    )


def _functional(runtime: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"functional-convergence-{runtime}",
        title=f"Functional: two datacenters converge on the {runtime} runtime",
        kind="functional",
        runtime=runtime,
        tags=("functional",) + (("net",) if runtime == "aio" else ()),
        topology=TopologySpec(datacenters=("A", "B")),
        workload=WorkloadSpec(lid_batch=8, append_records=12, settle_seconds=30.0),
        invariants=(
            Invariant(metric="points.0.converged", op="eq", value=True),
            Invariant(metric="points.0.causal_order_ok", op="eq", value=True),
            Invariant(metric="points.0.records.A", op="eq",
                      other="points.0.records.B"),
            Invariant(metric="points.0.acked", op="eq",
                      other="points.0.appended"),
        ),
    )


def _crash_during_partition() -> ScenarioSpec:
    # The ROADMAP chaos soak: a maintainer dies while its datacenter is cut
    # off from the WAN, so journal-replay recovery and partition catch-up
    # overlap — the log must still come out gap-free and convergent.
    return ScenarioSpec(
        name="crash-during-partition",
        title="Chaos soak: maintainer crash inside a WAN partition window",
        kind="functional",
        runtime="local",
        tags=("chaos", "soak", "functional"),
        topology=TopologySpec(datacenters=("A", "B")),
        workload=WorkloadSpec(lid_batch=8, append_records=16, settle_seconds=60.0),
        faults={
            "seed": 13,
            "rules": [],
            "crashes": [{"actor": "A/store/0", "at": 0.1}],
            "kills": [],
            "partitions": [{"a": "A/", "b": "B/", "start": 0.02, "end": 0.8}],
        },
        invariants=(
            Invariant(metric="points.0.converged", op="eq", value=True),
            Invariant(metric="points.0.causal_order_ok", op="eq", value=True),
            Invariant(metric="points.0.gap_free", op="eq", value=True,
                      note="journal replay leaves no hole in the log"),
            Invariant(metric="points.0.duplicate_free", op="eq", value=True,
                      note="replay + partition retransmits assign no LId twice"),
            Invariant(metric="points.0.records.A", op="eq",
                      other="points.0.records.B",
                      note="pipeline outcome matches the abstract log"),
            Invariant(metric="points.0.restarts", op="ge", value=1,
                      note="the supervisor actually restarted the victim"),
            Invariant(metric="faults.partitioned", op="gt", value=0,
                      note="the partition actually severed traffic"),
        ),
        notes="Crash at 0.1s lands inside the 0.02-0.8s A/B partition "
              "(virtual time; the whole run converges in about a second).",
    )


def _rolling_maintainer_restart() -> ScenarioSpec:
    # Every maintainer in the deployment crashes once, staggered, under
    # continuous client load — the rolling-restart elasticity drill.
    return ScenarioSpec(
        name="rolling-maintainer-restart",
        title="Chaos soak: rolling restart of every maintainer under load",
        kind="functional",
        runtime="local",
        tags=("chaos", "soak", "functional"),
        topology=TopologySpec(datacenters=("A", "B"), maintainers=2),
        workload=WorkloadSpec(lid_batch=8, append_records=32, settle_seconds=60.0),
        faults={
            "seed": 17,
            "rules": [],
            "crashes": [
                {"actor": "A/store/0", "at": 0.01},
                {"actor": "A/store/1", "at": 0.03},
                {"actor": "B/store/0", "at": 0.05},
                {"actor": "B/store/1", "at": 0.07},
            ],
            "kills": [],
            "partitions": [],
        },
        invariants=(
            Invariant(metric="points.0.converged", op="eq", value=True),
            Invariant(metric="points.0.causal_order_ok", op="eq", value=True),
            Invariant(metric="points.0.gap_free", op="eq", value=True),
            Invariant(metric="points.0.duplicate_free", op="eq", value=True),
            Invariant(metric="points.0.acked", op="eq",
                      other="points.0.appended",
                      note="no client append is lost across the restarts"),
            Invariant(metric="points.0.restarts", op="ge", value=4,
                      note="all four maintainers were restarted"),
        ),
        notes="Crashes staggered 20ms apart (virtual time) so at most one "
              "maintainer per datacenter is down at a time.",
    )


def _multiproc_crash_recovery() -> ScenarioSpec:
    # The acceptance scenario for process-level supervision: SIGKILL one
    # stage worker and one maintainer worker mid-run (real OS processes),
    # and require the same outcome as a fault-free run plus bounded,
    # invariant-checked recovery time.
    return ScenarioSpec(
        name="multiproc-crash-recovery",
        title="Chaos: SIGKILL a stage worker and a maintainer worker mid-run",
        kind="functional",
        runtime="multiproc",
        tags=("chaos", "functional", "net"),
        topology=TopologySpec(datacenters=("A", "B"), workers=4),
        workload=WorkloadSpec(lid_batch=8, append_records=12, settle_seconds=120.0),
        faults={
            "seed": 19,
            "rules": [],
            "crashes": [],
            # pipeline_placement: A's stages live on worker 0, A's
            # maintainers+indexers on worker 1 — one kill each.
            "kills": [
                {"worker": "A/batcher/0", "at": 0.15},
                {"worker": "A/store/0", "at": 0.3},
            ],
            "partitions": [],
        },
        invariants=(
            Invariant(metric="points.0.converged", op="eq", value=True),
            Invariant(metric="points.0.causal_order_ok", op="eq", value=True),
            Invariant(metric="points.0.gap_free", op="eq", value=True,
                      note="no LId lost to the kills"),
            Invariant(metric="points.0.duplicate_free", op="eq", value=True,
                      note="no LId assigned twice during replay"),
            Invariant(metric="points.0.acked", op="eq",
                      other="points.0.appended"),
            Invariant(metric="points.0.records.A", op="eq",
                      other="points.0.records.B"),
            Invariant(metric="points.0.workers_killed", op="eq", value=2,
                      note="both scheduled SIGKILLs fired"),
            Invariant(metric="points.0.recoveries", op="ge", value=2,
                      note="the supervisor respawned both workers"),
            Invariant(metric="points.0.recovery_seconds_max", op="between",
                      band=(0.0, 30.0),
                      note="detection + respawn + replay stays bounded"),
        ),
        source="src/repro/bench/multiproc.py",
        notes="Spawns real worker processes (excluded from the deterministic "
              "subset); the CI chaos smoke job runs this entry under a hard "
              "wall-clock timeout.",
    )


def _ablation_lid_batch() -> ScenarioSpec:
    sizes = [100, 1000, 10_000, 50_000]
    return ScenarioSpec(
        name="ablation-lid-batch-size",
        title="Ablation: LId round size vs throughput and head-of-log lag",
        kind="flstore",
        tags=("ablation",),
        topology=TopologySpec(maintainers=4, profile="public-cloud"),
        workload=WorkloadSpec(target_rate=100_000, duration=1.0, warmup=0.3),
        sweep=tuple(
            {"label": f"batch-{size}", "workload": {"lid_batch": size}}
            for size in sizes
        ),
        invariants=(
            Invariant(metric="points.3.achieved", op="approx",
                      other="points.0.achieved", rel=0.05,
                      note="throughput is insensitive to the round size"),
            Invariant(metric="points.3.head_lag", op="ge",
                      other="points.0.head_lag",
                      note="larger rounds hold the head of the log further back"),
        ),
        source="benchmarks/bench_ablation_batch_size.py",
    )


def _ablation_gossip_interval() -> ScenarioSpec:
    intervals = [0.001, 0.005, 0.02, 0.08]
    return ScenarioSpec(
        name="ablation-gossip-interval",
        title="Ablation: gossip interval vs head-of-log staleness",
        kind="flstore",
        tags=("ablation",),
        topology=TopologySpec(maintainers=4, profile="public-cloud"),
        workload=WorkloadSpec(target_rate=100_000, duration=1.0, warmup=0.3),
        sweep=tuple(
            {"label": f"gossip-{round(i * 1000)}ms",
             "workload": {"gossip_interval": i}}
            for i in intervals
        ),
        invariants=(
            Invariant(metric="points.3.achieved", op="approx",
                      other="points.0.achieved", rel=0.05,
                      note="fixed-size gossip is off the data path"),
            Invariant(metric="points.3.head_lag", op="gt",
                      other="points.0.head_lag",
                      note="HL staleness grows with the gossip interval"),
        ),
        source="benchmarks/bench_ablation_gossip_interval.py",
    )


def _ablation_token_queues() -> ScenarioSpec:
    return ScenarioSpec(
        name="ablation-token-queues",
        title="Ablation: queue-stage width under the circulating token (§6.2)",
        kind="pipeline",
        tags=("ablation",),
        workload=WorkloadSpec(target_rate=130_000, duration=1.2, warmup=0.4),
        sweep=tuple(
            {"label": f"q{n}", "topology": {"queues": n}} for n in (1, 2, 4)
        ),
        invariants=(
            Invariant(metric="points.2.stage_totals.Store", op="approx",
                      other="points.0.stage_totals.Store", rel=0.06,
                      note="the token is not a throughput bottleneck"),
            Invariant(metric="points.1.stage_totals.Store", op="approx",
                      other="points.0.stage_totals.Store", rel=0.06,
                      note="widening the queue stage neither helps nor hurts"),
            Invariant(metric="points.2.stage_rates.Queue.A/queue/3", op="gt",
                      value=0, note="every queue sees a share of the work"),
        ),
        source="benchmarks/bench_ablation_token_queues.py",
    )


def _ablation_elasticity() -> ScenarioSpec:
    offered = 480_000.0
    return ScenarioSpec(
        name="ablation-elasticity",
        title="Ablation: live maintainer expansion under overload (§6.3)",
        kind="flstore",
        tags=("ablation",),
        topology=TopologySpec(
            maintainers=2, clients=4, profile="private-cloud",
            expand_maintainers=2,
        ),
        workload=WorkloadSpec(
            target_rate=offered, client_batch=500, duration=3.5, warmup=0.7,
            expand_at=1.5, max_outstanding=8,
        ),
        invariants=(
            Invariant(metric="points.0.before", op="lt",
                      other="points.0.offered", scale=0.6,
                      note="two maintainers saturate well under the offered load"),
            Invariant(metric="points.0.after", op="gt",
                      other="points.0.before", scale=1.5,
                      note="throughput steps up once the new maintainers join"),
            Invariant(metric="points.0.after", op="gt",
                      other="points.0.offered", scale=0.9,
                      note="the expanded deployment absorbs the offered load"),
        ),
        source="benchmarks/bench_ablation_elasticity.py",
        notes="workload.target_rate is the total offered load here, spread "
              "over topology.clients generators; no restart, live §6.3 "
              "future reassignment.",
    )


def _pipeline_multiproc() -> ScenarioSpec:
    return ScenarioSpec(
        name="pipeline-multiproc",
        title="Perf: zero-copy RecordBatch wire path across worker processes",
        kind="pipeline",
        runtime="multiproc",
        tags=("perf", "net"),
        topology=TopologySpec(workers=4),
        workload=WorkloadSpec(total_records=50_000),
        invariants=(
            Invariant(metric="points.0.records_stored", op="eq", value=50_000,
                      note="every routed batch lands via the bulk-append path"),
            Invariant(metric="points.0.workers", op="eq", value=4),
        ),
        baselines=(
            # Host wall-clock rates vary by machine and core count: a wide
            # ratio band that still catches a hot-path collapse.
            BaselineCheck(file="BENCH_multiproc.json",
                          baseline_path="current.peak_records_per_host_sec",
                          metric="base.records_per_host_sec", source="perf",
                          ratio_band=(0.1, 10.0)),
        ),
        source="src/repro/bench/multiproc.py",
        notes="Spawns real worker processes; excluded from the deterministic "
              "subset. The committed sweep lives in BENCH_multiproc.json "
              "(python -m repro.bench.multiproc).",
    )


def _pipeline_baseline() -> ScenarioSpec:
    return ScenarioSpec(
        name="pipeline-baseline",
        title="Perf: the BENCH_pipeline.json configuration, compared to trajectory",
        kind="pipeline",
        tags=("perf",),
        topology=TopologySpec(),
        workload=WorkloadSpec(target_rate=130_000, duration=0.8, warmup=0.3),
        invariants=(
            Invariant(metric="points.0.bottleneck", op="eq", value="Client"),
        ),
        baselines=(
            # The simulated record count is deterministic: exact match.
            BaselineCheck(file="BENCH_pipeline.json",
                          baseline_path="current.records_stored",
                          metric="points.0.records_stored", rel_tol=0.0),
            # Host wall-clock numbers vary by machine: wide ratio bands that
            # still catch an order-of-magnitude hot-path regression.
            BaselineCheck(file="BENCH_pipeline.json",
                          baseline_path="current.records_per_host_sec",
                          metric="base.records_per_host_sec", source="perf",
                          ratio_band=(0.15, 6.0)),
            BaselineCheck(file="BENCH_pipeline.json",
                          baseline_path="current.wall_clock_seconds",
                          metric="base.wall_clock_seconds", source="perf",
                          ratio_band=(0.15, 6.0)),
        ),
        source="benchmarks/bench_micro_ops.py",
    )


def _micro_hotpaths() -> ScenarioSpec:
    bands = [
        ("base.codec.Record.combined_speedup",
         "codec.Record.combined_speedup", (0.25, 3.0)),
        ("base.codec.LogEntry.combined_speedup",
         "codec.LogEntry.combined_speedup", (0.25, 3.0)),
        ("base.codec.Record.binary.encode_ops_per_sec",
         "codec.Record.binary.encode_ops_per_sec", (0.1, 10.0)),
        ("base.maintainer_append_ops_per_sec",
         "maintainer_append_ops_per_sec", (0.1, 10.0)),
        ("base.filter_admission_ops_per_sec",
         "filter_admission_ops_per_sec", (0.1, 10.0)),
    ]
    return ScenarioSpec(
        name="micro-hotpaths",
        title="Perf: codec/maintainer/filter hot paths vs BENCH_micro.json",
        kind="micro",
        tags=("perf",),
        workload=WorkloadSpec(micro_batch=500, micro_repeats=2),
        invariants=(
            Invariant(metric="points.0.batch", op="eq", value=500),
        ),
        baselines=tuple(
            BaselineCheck(file="BENCH_micro.json", baseline_path=base,
                          metric=metric, source="perf", ratio_band=band)
            for metric, base, band in bands
        ),
        source="benchmarks/bench_micro_ops.py",
    )


CATALOG: Tuple[ScenarioSpec, ...] = (
    _fig7(),
    _fig8("private-131k", "private-cloud", 131_000),
    _fig8("public-125k", "public-cloud", 125_000),
    _fig8("public-250k", "public-cloud", 250_000),
    _fig9(),
    _table2(),
    _table3(),
    _table4(),
    _table5(),
    _overload(),
    _geo_replication_lag(),
    _geo_partition_soak(),
    _flstore_chaos_soak(),
    _crash_during_partition(),
    _rolling_maintainer_restart(),
    _multiproc_crash_recovery(),
    _corfu_ceiling(),
    _ablation_lid_batch(),
    _ablation_gossip_interval(),
    _ablation_token_queues(),
    _ablation_elasticity(),
    _functional("local"),
    _functional("aio"),
    _pipeline_baseline(),
    _pipeline_multiproc(),
    _micro_hotpaths(),
)

_BY_NAME: Dict[str, ScenarioSpec] = {spec.name: spec for spec in CATALOG}
if len(_BY_NAME) != len(CATALOG):  # pragma: no cover - guarded by tests
    raise ConfigurationError("duplicate scenario names in the catalog")


def names() -> List[str]:
    return [spec.name for spec in CATALOG]


def get(name: str) -> ScenarioSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r} (see `python -m repro.scenarios list`)"
        ) from None


def by_tag(tag: str) -> List[ScenarioSpec]:
    return [spec for spec in CATALOG if spec.has_tag(tag)]


def select(
    tags: Sequence[str] = (),
    names_filter: Sequence[str] = (),
    deterministic: Optional[bool] = None,
    runtime: Optional[str] = None,
) -> List[ScenarioSpec]:
    """Catalog entries matching all tags / any listed name / determinism /
    runtime (``sim``/``local``/``aio``/``multiproc``)."""
    out = []
    for spec in CATALOG:
        if names_filter and spec.name not in names_filter:
            continue
        if any(tag not in spec.tags for tag in tags):
            continue
        if deterministic is not None and spec.deterministic != deterministic:
            continue
        if runtime is not None and spec.runtime != runtime:
            continue
        out.append(spec)
    return out


def tags_in_use() -> List[str]:
    out: Set[str] = set()
    for spec in CATALOG:
        out.update(spec.tags)
    return sorted(out)
