"""Declarative scenario specifications for the experiment harness.

A :class:`ScenarioSpec` is everything one experiment needs, as data:

* a **topology** (stage machine counts, machine profile, datacenters),
* a **workload** profile (offered rate, batch sizes, duration, record size),
* an optional :class:`~repro.chaos.plan.FaultPlan` (as its dict form),
* optional :class:`~repro.core.config.PipelineConfig` /
  :class:`~repro.core.config.FLStoreConfig` overrides,
* a **sweep**: a list of per-point overrides (Figure 7 sweeps the target
  rate, Figure 8 the maintainer count, Table 5 the whole deployment),
* declarative **invariants** over the run's aggregate metrics (the paper's
  qualitative claims — "peaks at 150K", "the filter is the bottleneck"),
* **baseline checks** diffing aggregates against the committed
  ``BENCH_*.json`` trajectory with tolerance bands.

Specs round-trip losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` (and the JSON convenience wrappers), so a
catalog entry, a run artifact's ``spec.json``, and a hand-written JSON file
are the same object.  See ``docs/SCENARIOS.md`` for the schema.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from ..core.config import (
    PRIVATE_CLOUD,
    PUBLIC_CLOUD,
    FLStoreConfig,
    MachineProfile,
    PipelineConfig,
)
from ..core.errors import ConfigurationError

#: Scenario kinds and the executor each maps to (see ``executors.py``).
KINDS: Tuple[str, ...] = ("flstore", "pipeline", "corfu", "geo", "functional", "micro")

#: Runtimes a scenario may request.  ``sim`` is the deterministic
#: capacity-model substrate every paper figure uses; ``local`` runs the
#: functional deployment on the deterministic LocalRuntime; ``aio`` runs it
#: over real TCP sockets; ``multiproc`` runs the zero-copy RecordBatch wire
#: path across worker OS processes (both wall-clock, excluded from the
#: deterministic set).
RUNTIMES: Tuple[str, ...] = ("sim", "local", "aio", "multiproc")

#: Tags the catalog uses.  Free-form tags are allowed; these are the
#: well-known ones tests and the CLI filter on.
KNOWN_TAGS: Tuple[str, ...] = (
    "paper-figure",
    "soak",
    "overload",
    "geo",
    "chaos",
    "perf",
    "ablation",
)

#: Machine profiles addressable by name from a spec.  ``load-generator``
#: mirrors ``repro.bench.harness.GENERATOR``; ``fig9-shared-nic`` is the
#: constrained 1 GbE shared-NIC profile Figure 9's discussion describes.
PROFILES: Dict[str, MachineProfile] = {
    "private-cloud": PRIVATE_CLOUD,
    "public-cloud": PUBLIC_CLOUD,
    "load-generator": MachineProfile(
        name="load-generator",
        per_record_cost=1.0 / 4_000_000,
        nic_bandwidth_bytes=10e9 / 8,
        saturation_queue=1_000_000,
        overload_penalty=0.0,
    ),
    "fig9-shared-nic": MachineProfile(
        name="fig9-shared-nic",
        per_record_cost=1.0 / 132_000,
        nic_bandwidth_bytes=125e6,
        saturation_queue=24,
        overload_penalty=0.012,
        overload_cap=1.09,
    ),
}


def resolve_profile(ref: Any) -> MachineProfile:
    """A profile reference: a registry name or an inline field dict."""
    if isinstance(ref, MachineProfile):
        return ref
    if isinstance(ref, str):
        try:
            return PROFILES[ref]
        except KeyError:
            raise ConfigurationError(
                f"unknown machine profile {ref!r} (known: {sorted(PROFILES)})"
            ) from None
    if isinstance(ref, Mapping):
        return MachineProfile(**dict(ref))
    raise ConfigurationError(f"cannot resolve machine profile from {ref!r}")


def resolve_path(doc: Any, path: str) -> Any:
    """Resolve a dotted path (``points.3.stage_totals.Filter``) into a doc.

    Dict keys are matched as strings; purely numeric segments index lists.
    Raises :class:`KeyError` with the full path on a miss, so failure
    messages name what was being looked up.
    """
    node = doc
    for part in path.split("."):
        try:
            if isinstance(node, Mapping):
                node = node[part]
            elif isinstance(node, (list, tuple)):
                node = node[int(part)]
            else:
                raise KeyError(part)
        except (KeyError, IndexError, ValueError, TypeError):
            raise KeyError(f"path {path!r} missing at segment {part!r}") from None
    return node


def _prune(data: Dict[str, Any], defaults: Dict[str, Any]) -> Dict[str, Any]:
    """Drop keys whose value equals the dataclass default (compact JSON)."""
    return {k: v for k, v in data.items() if defaults.get(k, object()) != v}


def _defaults_of(cls: Type[Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.default is not dataclasses.MISSING:
            out[f.name] = f.default
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            out[f.name] = f.default_factory()  # type: ignore[misc]
    return out


# ===================================================================== #
# Topology and workload
# ===================================================================== #


@dataclass(frozen=True)
class TopologySpec:
    """Machine counts and placement for one scenario.

    Stage counts apply to ``pipeline``/``functional``/``geo`` kinds;
    ``maintainers`` doubles as the FLStore maintainer count; the
    ``units``/``sequencer_*`` fields apply to the ``corfu`` kind.
    """

    clients: int = 1
    batchers: int = 1
    filters: int = 1
    queues: int = 1
    maintainers: int = 1
    senders: int = 1
    receivers: int = 1
    profile: str = "private-cloud"
    shared_nic: bool = False
    datacenters: Tuple[str, ...] = ("A",)
    #: CORFU-style baseline: storage-unit count and sequencer ceiling.
    units: int = 1
    sequencer_capacity: float = 600_000.0
    grant_batch: int = 16
    #: One-way WAN RTT override for multi-datacenter scenarios (seconds).
    wan_rtt: Optional[float] = None
    #: Multiproc runtime: worker-process count (0 = inline, no processes).
    workers: int = 0
    #: FLStore elasticity: maintainers added live at ``workload.expand_at``
    #: via the §6.3 future-reassignment protocol (0 = no expansion).
    expand_maintainers: int = 0

    def __post_init__(self) -> None:
        for stage in ("clients", "batchers", "filters", "queues",
                      "maintainers", "senders", "receivers", "units"):
            if getattr(self, stage) < 1:
                raise ConfigurationError(f"topology.{stage} must be >= 1")
        if self.workers < 0:
            raise ConfigurationError("topology.workers must be >= 0")
        if self.expand_maintainers < 0:
            raise ConfigurationError("topology.expand_maintainers must be >= 0")
        if not self.datacenters:
            raise ConfigurationError("topology.datacenters must be non-empty")
        resolve_profile(self.profile)

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["datacenters"] = list(self.datacenters)
        defaults = _defaults_of(type(self))
        defaults["datacenters"] = ["A"]
        return _prune(data, defaults)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        kwargs = dict(data)
        if "datacenters" in kwargs:
            kwargs["datacenters"] = tuple(kwargs["datacenters"])
        return cls(**kwargs)


@dataclass(frozen=True)
class WorkloadSpec:
    """Offered load and measurement window for one scenario."""

    #: Offered records/s per client machine (pipeline kinds) or per
    #: maintainer (flstore) or per unit (corfu).
    target_rate: float = 130_000.0
    client_batch: int = 500
    record_size: int = 512
    duration: float = 1.5
    warmup: float = 0.4
    total_records: Optional[int] = None
    #: Keep simulating this long after the load window (drain phases).
    run_past_load: float = 0.0
    max_outstanding: int = 4
    #: FLStore round-robin LId round size and gossip interval (§5).
    lid_batch: int = 1000
    gossip_interval: float = 0.005
    #: Figure 9-style per-source throughput timeseries.
    timeseries_sources: Tuple[str, ...] = ()
    timeseries_bin: float = 0.1
    #: Drain analysis: (load_source, drain_source) — summarises when the
    #: load source went idle and how the drain source surged afterwards.
    drain_probe: Optional[Tuple[str, str]] = None
    #: Functional kinds: records appended per datacenter, settle budget.
    append_records: int = 24
    settle_seconds: float = 30.0
    #: Elasticity: sim time at which ``topology.expand_maintainers`` join.
    expand_at: float = 0.0
    #: Micro kind: measurement batch size and interleaved repeats.
    micro_batch: int = 500
    micro_repeats: int = 2

    def __post_init__(self) -> None:
        if self.target_rate <= 0:
            raise ConfigurationError("workload.target_rate must be positive")
        if self.duration <= 0 or self.warmup < 0:
            raise ConfigurationError("workload duration/warmup out of range")
        if self.warmup >= self.duration:
            raise ConfigurationError("workload.warmup must be < duration")
        if self.expand_at < 0:
            raise ConfigurationError("workload.expand_at must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["timeseries_sources"] = list(self.timeseries_sources)
        if self.drain_probe is not None:
            data["drain_probe"] = list(self.drain_probe)
        defaults = _defaults_of(type(self))
        defaults["timeseries_sources"] = []
        return _prune(data, defaults)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        kwargs = dict(data)
        if "timeseries_sources" in kwargs:
            kwargs["timeseries_sources"] = tuple(kwargs["timeseries_sources"])
        if kwargs.get("drain_probe") is not None:
            kwargs["drain_probe"] = tuple(kwargs["drain_probe"])
        return cls(**kwargs)


# ===================================================================== #
# Invariants and baseline checks
# ===================================================================== #

_OPS: Tuple[str, ...] = ("eq", "lt", "gt", "le", "ge", "approx", "between", "ratio_between")


@dataclass(frozen=True)
class Invariant:
    """One qualitative claim over a run's aggregate metrics.

    ``metric`` is a dotted path into the aggregates document.  The expected
    side is either a literal ``value`` or another path ``other`` (scaled by
    ``scale``) — so "achieved at ten maintainers ≈ 10 × achieved at one"
    is ``approx(metric=points.5.achieved, other=points.0.achieved,
    scale=10, rel=0.05)``.  ``between``/``ratio_between`` use ``band``.
    """

    metric: str
    op: str = "eq"
    value: Any = None
    other: Optional[str] = None
    scale: float = 1.0
    rel: float = 0.05
    band: Optional[Tuple[float, float]] = None
    #: Shown in failure messages — the paper claim this invariant encodes.
    note: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigurationError(f"unknown invariant op {self.op!r}")
        if self.op in ("between", "ratio_between") and self.band is None:
            raise ConfigurationError(f"invariant op {self.op!r} needs a band")
        if self.op == "ratio_between" and self.other is None:
            raise ConfigurationError("ratio_between needs an `other` path")

    # -- evaluation ---------------------------------------------------- #

    def _expected(self, aggregates: Any) -> Any:
        if self.other is not None:
            return self.scale * resolve_path(aggregates, self.other)
        return self.value

    def check(self, aggregates: Any) -> Optional[str]:
        """None when satisfied, otherwise a readable failure description."""
        try:
            actual = resolve_path(aggregates, self.metric)
            expected = self._expected(aggregates) if self.op not in (
                "between", "ratio_between") else None
            if self.op == "eq":
                ok = actual == expected
            elif self.op == "lt":
                ok = actual < expected
            elif self.op == "gt":
                ok = actual > expected
            elif self.op == "le":
                ok = actual <= expected
            elif self.op == "ge":
                ok = actual >= expected
            elif self.op == "approx":
                ok = abs(actual - expected) <= self.rel * abs(expected)
            elif self.op == "between":
                lo, hi = self.band  # type: ignore[misc]
                ok, expected = lo <= actual <= hi, f"[{self.band[0]}, {self.band[1]}]"
            else:  # ratio_between
                lo, hi = self.band  # type: ignore[misc]
                denom = self.scale * resolve_path(aggregates, self.other)  # type: ignore[arg-type]
                ratio = actual / denom if denom else float("inf")
                ok = lo <= ratio <= hi
                expected = f"ratio in [{lo}, {hi}] of {self.other} (got {ratio:.3f})"
        except KeyError as exc:
            return f"{self.metric}: {exc.args[0]}"
        if ok:
            return None
        suffix = f" — {self.note}" if self.note else ""
        return (
            f"{self.metric} {self.op} "
            f"{self.other + ' * ' + repr(self.scale) if self.other else expected!r}: "
            f"got {actual!r}{suffix}"
        )

    # -- serialisation -------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.band is not None:
            data["band"] = list(self.band)
        return _prune(data, _defaults_of(type(self)))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Invariant":
        kwargs = dict(data)
        if kwargs.get("band") is not None:
            kwargs["band"] = tuple(kwargs["band"])
        return cls(**kwargs)


@dataclass(frozen=True)
class BaselineCheck:
    """Diff one run metric against one committed-baseline metric.

    ``source`` picks the run document: ``aggregates`` (deterministic,
    simulated metrics) or ``perf`` (host-measured, compared with wide
    ``ratio_band`` because hosts differ).  Exactly one of ``rel_tol``,
    ``abs_tol``, ``ratio_band`` defines the tolerance.
    """

    file: str
    baseline_path: str
    metric: str
    source: str = "aggregates"
    rel_tol: Optional[float] = None
    abs_tol: Optional[float] = None
    ratio_band: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.source not in ("aggregates", "perf"):
            raise ConfigurationError(f"unknown baseline source {self.source!r}")
        given = [t for t in (self.rel_tol, self.abs_tol, self.ratio_band) if t is not None]
        if len(given) != 1:
            raise ConfigurationError(
                "exactly one of rel_tol/abs_tol/ratio_band must be set"
            )

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.ratio_band is not None:
            data["ratio_band"] = list(self.ratio_band)
        return _prune(data, _defaults_of(type(self)))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BaselineCheck":
        kwargs = dict(data)
        if kwargs.get("ratio_band") is not None:
            kwargs["ratio_band"] = tuple(kwargs["ratio_band"])
        return cls(**kwargs)


# ===================================================================== #
# The scenario spec
# ===================================================================== #


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: topology + workload + faults + checks."""

    name: str
    title: str
    kind: str = "pipeline"
    runtime: str = "sim"
    tags: Tuple[str, ...] = ()
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: PipelineConfig / FLStoreConfig overrides, as field dicts.
    pipeline: Dict[str, Any] = field(default_factory=dict)
    flstore: Dict[str, Any] = field(default_factory=dict)
    #: FaultPlan in its dict form (``FaultPlan.to_dict``); None = no chaos.
    faults: Optional[Dict[str, Any]] = None
    #: Per-point overrides; each entry may carry ``label`` plus partial
    #: ``topology`` / ``workload`` / ``pipeline`` / ``flstore`` sections.
    sweep: Tuple[Dict[str, Any], ...] = ()
    invariants: Tuple[Invariant, ...] = ()
    baselines: Tuple[BaselineCheck, ...] = ()
    seed: int = 0
    #: The bench script this entry subsumes (catalog-completeness test).
    source: str = ""
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.kind not in KINDS:
            raise ConfigurationError(f"unknown scenario kind {self.kind!r}")
        if self.runtime not in RUNTIMES:
            raise ConfigurationError(f"unknown runtime {self.runtime!r}")
        if self.kind in ("flstore", "corfu", "micro") and self.runtime != "sim":
            raise ConfigurationError(
                f"kind {self.kind!r} only runs on the sim runtime"
            )
        if self.kind == "pipeline" and self.runtime not in ("sim", "multiproc"):
            raise ConfigurationError(
                "pipeline scenarios run on the sim or multiproc runtime"
            )
        # Constructing the configs validates the override dicts eagerly.
        self.pipeline_config()
        self.flstore_config()

    # -- derived -------------------------------------------------------- #

    @property
    def deterministic(self) -> bool:
        """True when two runs must produce byte-identical aggregates."""
        return self.runtime in ("sim", "local")

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig(**self.pipeline)

    def flstore_config(self) -> FLStoreConfig:
        base = {
            "batch_size": self.workload.lid_batch,
            "gossip_interval": self.workload.gossip_interval,
        }
        base.update(self.flstore)
        return FLStoreConfig(**base)

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def points(self) -> List[Tuple[str, "ScenarioSpec"]]:
        """The resolved sweep: (label, effective spec) per point.

        With no sweep there is a single point labelled ``base``.
        """
        if not self.sweep:
            return [("base", self)]
        out: List[Tuple[str, ScenarioSpec]] = []
        for index, overrides in enumerate(self.sweep):
            label = str(overrides.get("label", f"point-{index}"))
            out.append((label, self.with_overrides(overrides)))
        return out

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """One sweep point: partial sections merged over the base spec."""
        unknown = set(overrides) - {"label", "topology", "workload", "pipeline", "flstore", "faults"}
        if unknown:
            raise ConfigurationError(f"unknown sweep override keys {sorted(unknown)}")
        topo = dataclasses.replace(
            self.topology,
            **{k: tuple(v) if k == "datacenters" else v
               for k, v in overrides.get("topology", {}).items()},
        )
        work_over = {
            k: tuple(v) if k in ("timeseries_sources", "drain_probe") and v is not None else v
            for k, v in overrides.get("workload", {}).items()
        }
        work = dataclasses.replace(self.workload, **work_over)
        pipe = {**self.pipeline, **overrides.get("pipeline", {})}
        fls = {**self.flstore, **overrides.get("flstore", {})}
        faults = overrides.get("faults", self.faults)
        return dataclasses.replace(
            self, topology=topo, workload=work, pipeline=pipe, flstore=fls,
            faults=faults, sweep=(),
        )

    # -- serialisation -------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "title": self.title,
            "kind": self.kind,
            "runtime": self.runtime,
            "tags": list(self.tags),
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
        }
        if self.pipeline:
            data["pipeline"] = dict(self.pipeline)
        if self.flstore:
            data["flstore"] = dict(self.flstore)
        if self.faults is not None:
            data["faults"] = self.faults
        if self.sweep:
            data["sweep"] = [dict(point) for point in self.sweep]
        if self.invariants:
            data["invariants"] = [inv.to_dict() for inv in self.invariants]
        if self.baselines:
            data["baselines"] = [check.to_dict() for check in self.baselines]
        if self.seed:
            data["seed"] = self.seed
        if self.source:
            data["source"] = self.source
        if self.notes:
            data["notes"] = self.notes
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            title=data.get("title", data["name"]),
            kind=data.get("kind", "pipeline"),
            runtime=data.get("runtime", "sim"),
            tags=tuple(data.get("tags", ())),
            topology=TopologySpec.from_dict(data.get("topology", {})),
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            pipeline=dict(data.get("pipeline", {})),
            flstore=dict(data.get("flstore", {})),
            faults=data.get("faults"),
            sweep=tuple(dict(point) for point in data.get("sweep", ())),
            invariants=tuple(
                Invariant.from_dict(inv) for inv in data.get("invariants", ())
            ),
            baselines=tuple(
                BaselineCheck.from_dict(chk) for chk in data.get("baselines", ())
            ),
            seed=data.get("seed", 0),
            source=data.get("source", ""),
            notes=data.get("notes", ""),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def check_invariants(spec: ScenarioSpec, aggregates: Any) -> List[str]:
    """Every invariant failure message (empty = all claims hold)."""
    failures = []
    for invariant in spec.invariants:
        message = invariant.check(aggregates)
        if message is not None:
            failures.append(message)
    return failures


def filter_specs(
    specs: Sequence[ScenarioSpec],
    tags: Sequence[str] = (),
    names: Sequence[str] = (),
) -> List[ScenarioSpec]:
    """Specs matching every given tag and (if given) one of the names."""
    out = []
    for spec in specs:
        if names and spec.name not in names:
            continue
        if any(tag not in spec.tags for tag in tags):
            continue
        out.append(spec)
    return out
