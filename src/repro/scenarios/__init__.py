"""Declarative scenario catalog and experiment harness.

``repro.scenarios`` turns the repo's experiments into data: a
:class:`ScenarioSpec` describes topology, workload, faults, and the checks
a run must satisfy; the :class:`ScenarioRunner` executes specs through a
standup → experiment → teardown lifecycle and persists artifacts under
``runs/<scenario>/<run-id>/``; :mod:`~repro.scenarios.catalog` holds the
tagged entries covering the paper's Figures 7–9 and Tables 2–5 plus the
repo's own soak/overload/chaos scenarios.

Command line: ``python -m repro.scenarios {list,show,run,compare}``.
"""

from .catalog import CATALOG, by_tag, get, names, select, tags_in_use
from .compare import (
    CheckOutcome,
    ComparisonResult,
    compare_documents,
    compare_run_dir,
)
from .executors import EXECUTORS, ExecutionContext, Executor, executor_for
from .runner import (
    PhaseStatus,
    RunResult,
    ScenarioError,
    ScenarioRunner,
    latest_run_dir,
    next_run_id,
    run_scenario,
)
from .spec import (
    KINDS,
    KNOWN_TAGS,
    PROFILES,
    RUNTIMES,
    BaselineCheck,
    Invariant,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    check_invariants,
    filter_specs,
    resolve_path,
    resolve_profile,
)

__all__ = [
    "CATALOG",
    "EXECUTORS",
    "KINDS",
    "KNOWN_TAGS",
    "PROFILES",
    "RUNTIMES",
    "BaselineCheck",
    "CheckOutcome",
    "ComparisonResult",
    "ExecutionContext",
    "Executor",
    "Invariant",
    "PhaseStatus",
    "RunResult",
    "ScenarioError",
    "ScenarioRunner",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "by_tag",
    "check_invariants",
    "compare_documents",
    "compare_run_dir",
    "executor_for",
    "filter_specs",
    "get",
    "latest_run_dir",
    "names",
    "next_run_id",
    "resolve_path",
    "resolve_profile",
    "run_scenario",
    "select",
    "tags_in_use",
]
