"""Kind-specific executors driving one scenario spec through its phases.

Every executor implements the same three-phase protocol the runner calls:

* :meth:`Executor.standup` — resolve the spec into ready-to-run points
  (profiles looked up, configs constructed, fault plans instantiated).
  Misconfiguration fails here, before any simulation work.
* :meth:`Executor.experiment` — execute every point and produce the
  **aggregates** document (deterministic, simulated metrics only — two
  seeded runs yield byte-identical JSON) plus the **perf** document
  (host-measured wall-clock numbers, compared only with wide bands).
* :meth:`Executor.teardown` — release any live resources.  The runner
  guarantees this runs even when the experiment raises.

The sim-backed kinds (``flstore``/``pipeline``/``corfu``/``geo``/``micro``)
delegate the actual capacity modelling to :mod:`repro.bench.harness`; the
``functional`` kind drives the real deployment on the deterministic
LocalRuntime or over TCP sockets (AioRuntime).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bench.harness import (
    PIPELINE_STAGES,
    run_corfu_sim,
    run_flstore_sim,
    run_pipeline_sim,
)
from ..chaos.plan import FaultPlan
from ..chariots.messages import DraftBatch, DraftRecord
from ..chariots.pipeline import ChariotsDeployment
from ..core.config import DeploymentSpec, NetworkProfile
from ..core.errors import ConfigurationError
from ..sim.kernel import SimRuntime
from ..sim.workload import LoadClient
from .spec import PROFILES, ScenarioSpec, resolve_profile

#: Rate threshold (records/s) below which a timeseries source counts as
#: idle when locating the end of its active window (Figure 9 analysis).
_ACTIVE_FLOOR = 1000.0


@dataclass
class ExecutionContext:
    """Everything standup resolved, handed through experiment to teardown."""

    spec: ScenarioSpec
    #: (label, effective per-point spec, per-point fault plan).
    points: List[Tuple[str, ScenarioSpec, Optional[FaultPlan]]]
    #: Per-point timeseries, persisted as a separate run artifact.
    timeseries: Dict[str, Dict[str, List[Tuple[float, float]]]] = field(
        default_factory=dict
    )
    #: Live resources the functional executor must stop on teardown.
    resources: List[Any] = field(default_factory=list)
    torn_down: bool = False


class Executor:
    """Base class: shared standup/teardown; subclasses run one point."""

    kind = ""

    def standup(self, spec: ScenarioSpec) -> ExecutionContext:
        points: List[Tuple[str, ScenarioSpec, Optional[FaultPlan]]] = []
        for label, point in spec.points():
            resolve_profile(point.topology.profile)  # fail fast on typos
            plan = (
                FaultPlan.from_dict(point.faults)
                if point.faults is not None
                else None
            )
            points.append((label, point, plan))
        if not points:
            raise ConfigurationError(f"scenario {spec.name!r} has no points")
        return ExecutionContext(spec=spec, points=points)

    def experiment(
        self, context: ExecutionContext
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Returns ``(aggregates, perf)``."""
        point_metrics: List[Dict[str, Any]] = []
        perf: Dict[str, Any] = {}
        fault_stats: Dict[str, int] = {}
        for label, point, plan in context.points:
            metrics = self.run_point(context, label, point, plan)
            host = metrics.pop("_perf", None)
            if host:
                perf[label] = host
            if plan is not None:
                for key, count in plan.stats.items():
                    fault_stats[key] = fault_stats.get(key, 0) + count
            metrics = {"label": label, **metrics}
            point_metrics.append(metrics)
        aggregates: Dict[str, Any] = {
            "kind": context.spec.kind,
            "scenario": context.spec.name,
            "points": point_metrics,
        }
        best = self.best_point(point_metrics)
        if best is not None:
            aggregates["best"] = best
        if fault_stats:
            aggregates["faults"] = dict(sorted(fault_stats.items()))
        return aggregates, perf

    def teardown(self, context: ExecutionContext) -> None:
        context.resources.clear()
        context.torn_down = True

    # -- hooks ----------------------------------------------------------- #

    def run_point(
        self,
        context: ExecutionContext,
        label: str,
        point: ScenarioSpec,
        plan: Optional[FaultPlan],
    ) -> Dict[str, Any]:
        raise NotImplementedError

    #: Metric key identifying each kind's headline number, used to pick the
    #: sweep's best point (Figure 7's "peak at 150K" claim).
    primary_metric = ""

    def best_point(
        self, points: List[Dict[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        if not self.primary_metric or not points:
            return None
        index = max(
            range(len(points)),
            key=lambda i: points[i].get(self.primary_metric, float("-inf")),
        )
        return {"index": index, **points[index]}


class FLStoreExecutor(Executor):
    """Figures 7–8: load generators against an FLStore deployment."""

    kind = "flstore"
    primary_metric = "achieved"

    def run_point(
        self,
        context: ExecutionContext,
        label: str,
        point: ScenarioSpec,
        plan: Optional[FaultPlan],
    ) -> Dict[str, Any]:
        if point.topology.expand_maintainers:
            return self._run_elastic(point, plan)
        topo, work = point.topology, point.workload
        result = run_flstore_sim(
            n_maintainers=topo.maintainers,
            target_per_maintainer=work.target_rate,
            maintainer_profile=resolve_profile(topo.profile),
            duration=work.duration,
            warmup=work.warmup,
            client_batch=work.client_batch,
            record_size=work.record_size,
            lid_batch=work.lid_batch,
            gossip_interval=work.gossip_interval,
            shared_nic=topo.shared_nic,
            config=point.flstore_config(),
            chaos=plan,
        )
        return {
            "maintainers": topo.maintainers,
            "target": round(work.target_rate),
            "achieved": round(result.achieved_total),
            "achieved_per_maintainer": round(result.achieved_per_maintainer),
            "scaling_fraction": round(result.perfect_scaling_fraction, 4),
            "records_stored": result.records_stored,
            "head_lag": result.head_lag_records,
        }

    def _run_elastic(
        self, point: ScenarioSpec, plan: Optional[FaultPlan]
    ) -> Dict[str, Any]:
        """Live elasticity (§6.3): maintainers join mid-run under overload.

        ``workload.target_rate`` is the *total* offered load here (spread
        over ``topology.clients`` generators); ``workload.warmup`` doubles
        as the settle margin after the expansion, so the ``after`` window
        excludes the reassignment handshake and the drained backlog surge.
        """
        from ..bench.harness import _template_record
        from ..chariots.elasticity import expand_maintainers
        from ..flstore.messages import AppendRequest
        from ..flstore.store import FLStore

        topo, work = point.topology, point.workload
        if not 0 < work.expand_at < work.duration:
            raise ConfigurationError(
                "elastic flstore scenarios need 0 < workload.expand_at < duration"
            )
        profile = resolve_profile(topo.profile)
        runtime = SimRuntime(record_size=work.record_size, chaos=plan)

        def place(actor: Any) -> None:
            runtime.place_on_new_machine(actor, profile=profile)

        store = FLStore(
            runtime,
            n_maintainers=topo.maintainers,
            n_indexers=0,
            batch_size=work.lid_batch,
            config=point.flstore_config(),
            placer=place,
        )
        template = _template_record(work.record_size)

        def factory(client_name: str, batch_index: int, n: int) -> AppendRequest:
            return AppendRequest(
                request_id=batch_index, records=[template] * n, want_results=False
            )

        offered = work.target_rate
        clients = []
        for i in range(topo.clients):
            client = LoadClient(
                f"loadgen/{i}",
                targets=[m.name for m in store.maintainers],
                batch_factory=factory,
                target_rate=offered / topo.clients,
                batch_size=work.client_batch,
                max_outstanding=work.max_outstanding,
            )
            runtime.place_on_new_machine(
                client, profile=PROFILES["load-generator"]
            )
            clients.append(client)

        runtime.run(until_time=work.expand_at)
        expand_maintainers(store, topo.expand_maintainers, placer=place)
        names = [m.name for m in store.maintainers]
        for client in clients:
            client.set_targets(names)  # session refresh after the expansion
        runtime.run(until_time=work.duration)

        def stage_rate(start: float, end: float) -> float:
            return sum(
                runtime.metrics.rate(m.name, "in_records", start, end)
                for m in store.maintainers
                if runtime.metrics.total(m.name, "in_records") > 0
            )

        before = stage_rate(work.warmup, work.expand_at)
        after = stage_rate(work.expand_at + work.warmup, work.duration)
        return {
            "maintainers_before": topo.maintainers,
            "maintainers_after": topo.maintainers + topo.expand_maintainers,
            "offered": round(offered),
            "before": round(before),
            "after": round(after),
            "step_ratio": round(after / before, 3) if before else 0.0,
        }


class PipelineExecutor(Executor):
    """Tables 2–5 and Figure 9: the single-datacenter Chariots pipeline.

    On the ``multiproc`` runtime the point instead measures the zero-copy
    RecordBatch wire path across worker OS processes
    (:func:`repro.bench.multiproc.run_pipeline_multiproc`) — the record
    count is deterministic, the rates land in the ``perf`` document.
    """

    kind = "pipeline"
    primary_metric = ""

    def run_point(
        self,
        context: ExecutionContext,
        label: str,
        point: ScenarioSpec,
        plan: Optional[FaultPlan],
    ) -> Dict[str, Any]:
        if point.runtime == "multiproc":
            return self._run_multiproc(point, plan)
        topo, work = point.topology, point.workload
        result = run_pipeline_sim(
            clients=topo.clients,
            batchers=topo.batchers,
            filters=topo.filters,
            queues=topo.queues,
            maintainers=topo.maintainers,
            senders=topo.senders,
            receivers=topo.receivers,
            client_target=work.target_rate,
            total_records=work.total_records,
            profile=resolve_profile(topo.profile),
            duration=work.duration,
            warmup=work.warmup,
            client_batch=work.client_batch,
            record_size=work.record_size,
            lid_batch=work.lid_batch,
            timeseries_for=work.timeseries_sources,
            timeseries_bin=work.timeseries_bin,
            run_past_load=work.run_past_load,
            shared_nic=topo.shared_nic,
            pipeline_config=point.pipeline_config() if point.pipeline else None,
            flstore_config=point.flstore_config(),
            chaos=plan,
        )
        metrics: Dict[str, Any] = {
            "stage_totals": {
                stage: round(result.stage_total(stage))
                for stage, _, _ in PIPELINE_STAGES
            },
            "stage_rates": {
                stage: {m: round(r) for m, r in sorted(rates.items())}
                for stage, rates in result.stage_rates.items()
            },
            "bottleneck": result.bottleneck(),
            "records_stored": result.records_stored,
        }
        if work.timeseries_sources:
            context.timeseries[label] = {
                source: [(round(t, 3), round(rate)) for t, rate in series]
                for source, series in result.timeseries.items()
            }
        if work.drain_probe is not None:
            metrics["drain"] = self._drain_summary(result.timeseries, work.drain_probe)
        if result.wall_clock:
            metrics["_perf"] = {
                "wall_clock_seconds": round(result.wall_clock, 3),
                "records_per_host_sec": round(
                    result.records_stored / result.wall_clock
                ),
                "records_stored": result.records_stored,
            }
        return metrics

    @staticmethod
    def _run_multiproc(
        point: ScenarioSpec, plan: Optional[FaultPlan]
    ) -> Dict[str, Any]:
        from ..bench.multiproc import run_pipeline_multiproc

        if plan is not None:
            raise ConfigurationError(
                "fault plans apply to simulated networks, not the multiproc "
                "runtime"
            )
        topo, work = point.topology, point.workload
        if work.total_records is None:
            raise ConfigurationError(
                "multiproc scenarios need workload.total_records"
            )
        result = run_pipeline_multiproc(
            workers=topo.workers,
            total_records=work.total_records,
            batch_size=work.lid_batch,
            record_size=work.record_size,
        )
        return {
            "workers": result.workers,
            "records_stored": result.records_stored,
            "_perf": {
                "bytes_routed": result.bytes_routed,
                "records_per_host_sec": round(result.records_per_host_sec),
                "records_stored": result.records_stored,
                "wall_clock_seconds": round(result.wall_clock, 3),
            },
        }

    @staticmethod
    def _drain_summary(
        timeseries: Dict[str, List[Tuple[float, float]]],
        probe: Tuple[str, str],
    ) -> Dict[str, Any]:
        """Figure 9's drain analysis: when did the load stop, how hard did
        the drain source surge once the upstream NIC pressure lifted."""
        load_source, drain_source = probe
        for source in probe:
            if source not in timeseries:
                raise ConfigurationError(
                    f"drain_probe source {source!r} not in timeseries_sources"
                )

        def active_end(series: List[Tuple[float, float]]) -> float:
            active = [t for t, rate in series if rate > _ACTIVE_FLOOR]
            return active[-1] if active else 0.0

        load_end = active_end(timeseries[load_source])
        drain_end = active_end(timeseries[drain_source])
        drain_series = timeseries[drain_source]
        loaded = [r for t, r in drain_series if 0.2 <= t <= load_end]
        draining = [
            r for t, r in drain_series if load_end + 0.2 <= t < drain_end
        ]
        loaded_mean = sum(loaded) / len(loaded) if loaded else 0.0
        drain_max = max(draining) if draining else 0.0
        return {
            "load_end": round(load_end, 3),
            "drain_end": round(drain_end, 3),
            "gap": round(drain_end - load_end, 3),
            "loaded_mean": round(loaded_mean),
            "drain_max": round(drain_max),
            "surge_ratio": round(drain_max / loaded_mean, 3) if loaded_mean else 0.0,
        }


class CorfuExecutor(Executor):
    """The sequencer-based comparator (scaling ablation)."""

    kind = "corfu"
    primary_metric = "achieved"

    def run_point(
        self,
        context: ExecutionContext,
        label: str,
        point: ScenarioSpec,
        plan: Optional[FaultPlan],
    ) -> Dict[str, Any]:
        topo, work = point.topology, point.workload
        result = run_corfu_sim(
            n_units=topo.units,
            target_per_unit=work.target_rate,
            unit_profile=resolve_profile(topo.profile),
            sequencer_capacity=topo.sequencer_capacity,
            grant_batch=topo.grant_batch,
            duration=work.duration,
            warmup=work.warmup,
            record_size=work.record_size,
            lid_batch=work.lid_batch,
            chaos=plan,
        )
        return {
            "units": topo.units,
            "target": round(work.target_rate),
            "achieved": round(result.achieved_total),
            "sequencer_grants_per_sec": round(result.sequencer_grants_per_second),
        }


class GeoExecutor(Executor):
    """Multi-datacenter deployments over simulated WAN links.

    Drives a fixed-size load into the first datacenter and measures how
    long past the end of the load window the *remote* datacenters need to
    incorporate everything — the geo-replication lag.  Partitions and
    message-level faults come from the spec's :class:`FaultPlan`.
    """

    kind = "geo"
    primary_metric = ""

    def run_point(
        self,
        context: ExecutionContext,
        label: str,
        point: ScenarioSpec,
        plan: Optional[FaultPlan],
    ) -> Dict[str, Any]:
        topo, work = point.topology, point.workload
        if len(topo.datacenters) < 2:
            raise ConfigurationError("geo scenarios need >= 2 datacenters")
        if work.total_records is None:
            raise ConfigurationError("geo scenarios need workload.total_records")
        network = (
            NetworkProfile(wan_rtt=topo.wan_rtt)
            if topo.wan_rtt is not None
            else NetworkProfile()
        )
        runtime = SimRuntime(
            network=network, record_size=work.record_size, chaos=plan
        )
        profile = resolve_profile(topo.profile)

        def placer(actor: Any) -> None:
            datacenter = actor.name.split("/")[0]
            runtime.place_on_new_machine(
                actor, profile=profile, datacenter=datacenter
            )

        deployment = ChariotsDeployment(
            runtime,
            list(topo.datacenters),
            spec=DeploymentSpec(
                clients=1,
                batchers=topo.batchers,
                filters=topo.filters,
                queues=topo.queues,
                maintainers=topo.maintainers,
                senders=topo.senders,
                receivers=topo.receivers,
            ),
            batch_size=work.lid_batch,
            pipeline_config=point.pipeline_config() if point.pipeline else None,
            flstore_config=point.flstore_config(),
            n_indexers=0,
            placer=placer,
        )

        home = topo.datacenters[0]
        remotes = list(topo.datacenters[1:])
        body = b"\x00" * work.record_size
        sequence = itertools.count(1)

        def factory(client_name: str, batch_index: int, n: int) -> DraftBatch:
            return DraftBatch(
                [
                    DraftRecord(client=client_name, seq=next(sequence), body=body)
                    for _ in range(n)
                ]
            )

        client = LoadClient(
            f"{home}/loadgen",
            targets=[deployment[home].batchers[0].name],
            batch_factory=factory,
            target_rate=work.target_rate,
            batch_size=work.client_batch,
            total_records=work.total_records,
            max_outstanding=work.max_outstanding,
        )
        runtime.place_on_new_machine(
            client, profile=PROFILES["load-generator"], datacenter=home
        )

        load_end = work.total_records / work.target_rate
        deadline = load_end + work.settle_seconds
        runtime.start()
        caught_up: Optional[float] = None
        while runtime.now < deadline:
            runtime.run_for(0.01)
            if all(
                deployment[dc].frontier().get(home, 0) >= work.total_records
                for dc in remotes
            ):
                caught_up = max(0.0, runtime.now - load_end)
                break
        # A short quiet period so every datacenter finishes incorporating.
        runtime.run_for(0.2)
        return {
            "records": {
                dc: deployment[dc].total_records() for dc in topo.datacenters
            },
            "caught_up": caught_up is not None,
            "lag_seconds": round(caught_up, 4) if caught_up is not None else None,
            "converged": deployment.converged(),
        }


class FunctionalExecutor(Executor):
    """The real protocol stack, functionally: append, settle, converge.

    On ``local`` this is fully deterministic (the LocalRuntime's virtual
    clock); on ``aio`` the same deployment runs over real TCP sockets and
    is excluded from the deterministic catalog subset.
    """

    kind = "functional"
    primary_metric = ""

    def run_point(
        self,
        context: ExecutionContext,
        label: str,
        point: ScenarioSpec,
        plan: Optional[FaultPlan],
    ) -> Dict[str, Any]:
        if point.runtime == "aio":
            return self._run_aio(point)
        if point.runtime == "multiproc":
            return self._run_multiproc(point, plan)
        return self._run_local(point, plan)

    def _deployment_spec(self, point: ScenarioSpec) -> DeploymentSpec:
        topo = point.topology
        return DeploymentSpec(
            clients=1,
            batchers=topo.batchers,
            filters=topo.filters,
            queues=topo.queues,
            maintainers=topo.maintainers,
            senders=topo.senders,
            receivers=topo.receivers,
        )

    def _run_local(
        self, point: ScenarioSpec, plan: Optional[FaultPlan]
    ) -> Dict[str, Any]:
        from ..runtime.local import LocalRuntime

        work = point.workload
        runtime = LocalRuntime(chaos=plan)
        deployment = ChariotsDeployment(
            runtime,
            list(point.topology.datacenters),
            spec=self._deployment_spec(point),
            batch_size=work.lid_batch,
            pipeline_config=point.pipeline_config() if point.pipeline else None,
            flstore_config=point.flstore_config(),
        )
        supervisor = None
        if plan is not None and plan.crashes:
            # Crash events only make sense with someone to restart the
            # victims; supervise every maintainer from its journal.
            supervisor = deployment.supervise()
        acks: List[Any] = []
        for dc in point.topology.datacenters:
            client = deployment.client(dc)
            for i in range(work.append_records):
                client.append(f"{dc}-{i}", on_done=acks.append)
        converged = deployment.settle(max_seconds=work.settle_seconds)
        metrics = self._functional_metrics(deployment, point, converged, len(acks))
        if supervisor is not None:
            metrics["restarts"] = int(sum(supervisor.restarts.values()))
        return metrics

    def _run_multiproc(
        self, point: ScenarioSpec, plan: Optional[FaultPlan]
    ) -> Dict[str, Any]:
        from ..bench.multiproc import run_deployment_multiproc_chaos

        work = point.workload
        dcs = list(point.topology.datacenters)
        out = run_deployment_multiproc_chaos(
            datacenters=dcs,
            workers=point.topology.workers,
            appends=work.append_records * len(dcs),
            batch_size=work.lid_batch,
            plan=plan,
            timeout=work.settle_seconds,
        )
        # Reshape to the functional-metrics surface so the shared invariant
        # paths (records.X / appended / acked / converged) work unchanged;
        # keep the recovery metrics alongside.
        out["records"] = out.pop("records_per_dc")
        out["appended"] = out.pop("appends")
        return out

    def _run_aio(self, point: ScenarioSpec) -> Dict[str, Any]:
        import asyncio

        from ..net.aio_runtime import AioRuntime

        work = point.workload

        async def scenario() -> Dict[str, Any]:
            runtime = AioRuntime()
            deployment = ChariotsDeployment(
                runtime,
                list(point.topology.datacenters),
                spec=self._deployment_spec(point),
                batch_size=work.lid_batch,
                pipeline_config=point.pipeline_config() if point.pipeline else None,
                flstore_config=point.flstore_config(),
            )
            await runtime.start()
            try:
                acks: List[Any] = []
                for dc in point.topology.datacenters:
                    client = deployment.client(dc)
                    for i in range(work.append_records):
                        client.append(f"{dc}-{i}", on_done=acks.append)
                expected = work.append_records * len(point.topology.datacenters)
                converged = await runtime.settle(
                    lambda: len(acks) == expected and deployment.converged(),
                    max_seconds=work.settle_seconds,
                )
                return self._functional_metrics(
                    deployment, point, converged, len(acks)
                )
            finally:
                await runtime.stop()

        return asyncio.run(scenario())

    @staticmethod
    def _functional_metrics(
        deployment: ChariotsDeployment,
        point: ScenarioSpec,
        converged: bool,
        acked: int,
    ) -> Dict[str, Any]:
        from ..core import causal_order_respected

        causal_ok = True
        gap_free = True
        duplicate_free = True
        for dc in point.topology.datacenters:
            entries = deployment[dc].all_entries()
            causal_ok = causal_ok and causal_order_respected(
                [entry.record for entry in entries]
            )
            lids = [entry.lid for entry in entries]
            duplicate_free = duplicate_free and len(lids) == len(set(lids))
            gap_free = gap_free and (
                not lids or lids == list(range(lids[0], lids[0] + len(lids)))
            )
        return {
            "records": {
                dc: deployment[dc].total_records()
                for dc in point.topology.datacenters
            },
            "appended": point.workload.append_records
            * len(point.topology.datacenters),
            "acked": acked,
            "converged": converged,
            "causal_order_ok": causal_ok,
            "gap_free": gap_free,
            "duplicate_free": duplicate_free,
        }


class MicroExecutor(Executor):
    """Host-performance micro suite (the BENCH_micro.json trajectory)."""

    kind = "micro"
    primary_metric = ""

    def run_point(
        self,
        context: ExecutionContext,
        label: str,
        point: ScenarioSpec,
        plan: Optional[FaultPlan],
    ) -> Dict[str, Any]:
        from ..bench.micro import run_micro_suite

        work = point.workload
        report = run_micro_suite(batch=work.micro_batch, repeats=work.micro_repeats)
        return {
            "batch": work.micro_batch,
            "repeats": work.micro_repeats,
            "_perf": report,
        }


EXECUTORS: Dict[str, Executor] = {
    executor.kind: executor
    for executor in (
        FLStoreExecutor(),
        PipelineExecutor(),
        CorfuExecutor(),
        GeoExecutor(),
        FunctionalExecutor(),
        MicroExecutor(),
    )
}


def executor_for(spec: ScenarioSpec) -> Executor:
    try:
        return EXECUTORS[spec.kind]
    except KeyError:
        raise ConfigurationError(f"no executor for kind {spec.kind!r}") from None
