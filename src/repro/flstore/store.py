"""FLStore deployment facade: wire up a whole single-datacenter log store.

Builds the controller, log maintainers, and indexers on any runtime and
hands out clients.  Tests, examples, and the benchmark harness all create
FLStore deployments through this module.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.config import FLStoreConfig
from ..core.record import LogEntry
from ..runtime.actor import Actor
from ..runtime.local import BaseRuntime
from .client import BlockingFLStoreClient, FLStoreClient
from .controller import Controller
from .indexer import Indexer
from .maintainer import LogMaintainer
from .range_map import OwnershipPlan

#: Hook deciding how an actor joins the runtime (e.g. simulator placement).
Placer = Callable[[Actor], None]


class FLStore:
    """A deployed single-datacenter FLStore instance."""

    def __init__(
        self,
        runtime: BaseRuntime,
        n_maintainers: int = 3,
        n_indexers: int = 1,
        batch_size: int = 1000,
        config: Optional[FLStoreConfig] = None,
        prefix: str = "",
        placer: Optional[Placer] = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or FLStoreConfig()
        place = placer or (lambda actor: runtime.register(actor))

        maintainer_names = [f"{prefix}maintainer/{i}" for i in range(n_maintainers)]
        indexer_names = [f"{prefix}indexer/{i}" for i in range(n_indexers)]
        controller_name = f"{prefix}controller"
        self.plan = OwnershipPlan(maintainer_names, batch_size=batch_size)

        self.maintainers: List[LogMaintainer] = []
        for name in maintainer_names:
            maintainer = LogMaintainer(
                name,
                self.plan,
                peers=maintainer_names,
                indexers=indexer_names,
                config=self.config,
                controller=controller_name,
            )
            place(maintainer)
            self.maintainers.append(maintainer)

        self.indexers: List[Indexer] = []
        for name in indexer_names:
            indexer = Indexer(name)
            place(indexer)
            self.indexers.append(indexer)

        self.controller = Controller(
            controller_name, self.plan, indexers=indexer_names, config=self.config
        )
        runtime.register(self.controller)  # control plane: never placed on a machine

        self._client_count = 0
        self._placer = place
        self._prefix = prefix

    # ------------------------------------------------------------------ #
    # Clients
    # ------------------------------------------------------------------ #

    def client(self, name: Optional[str] = None) -> FLStoreClient:
        self._client_count += 1
        client_name = name or f"{self._prefix}client/{self._client_count}"
        client = FLStoreClient(client_name, self.controller.name, seed=self._client_count)
        self.runtime.register(client)
        return client

    def blocking_client(self, name: Optional[str] = None) -> BlockingFLStoreClient:
        return BlockingFLStoreClient(self.client(name), self.runtime)

    # ------------------------------------------------------------------ #
    # Whole-log introspection (test/diagnostic convenience)
    # ------------------------------------------------------------------ #

    def head_of_log(self) -> int:
        """The most conservative HL across maintainers' gossip views."""
        return min(m.core.head_of_log() for m in self.maintainers)

    def all_entries(self) -> List[LogEntry]:
        """Every stored entry across maintainers, in LId order."""
        entries = [e for m in self.maintainers for e in m.core.stored_entries()]
        entries.sort(key=lambda entry: entry.lid)
        return entries

    def total_records(self) -> int:
        return sum(m.core.stored_count() for m in self.maintainers)
