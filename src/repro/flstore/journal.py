"""Durability: append-only journals and maintainer crash recovery.

The paper treats persistence as a given ("Log maintainers are responsible
for persisting the log's records") and lists component failures among the
challenges Chariots handles.  This module provides the mechanism: every
placement/append can be recorded in a journal, and a restarted maintainer
replays it to recover exactly the slice it owned — the post-assignment
cursor, the placed-record frontier, and the tag postings all rebuild from
the journal alone.

Two journal flavours:

* :class:`MemoryJournal` — in-process, used by tests and failure drills;
* :class:`FileJournal` — JSON-lines on disk, crash-safe via append-only
  writes (an interrupted final line is detected and skipped on replay).
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..core.config import FLStoreConfig
from ..core.record import Record
from ..net.protocol import record_from_dict, record_to_dict
from .maintainer import MaintainerCore
from .range_map import OwnershipPlan


class MemoryJournal:
    """An in-memory append-only journal of (LId, record) placements."""

    def __init__(self) -> None:
        self._entries: List[Tuple[int, Record]] = []

    def __call__(self, lid: int, record: Record) -> None:
        self._entries.append((lid, record))

    def __len__(self) -> int:
        return len(self._entries)

    def replay(self) -> Iterator[Tuple[int, Record]]:
        return iter(list(self._entries))

    def truncate_below(self, lid: int) -> int:
        """Compact the journal after garbage collection."""
        before = len(self._entries)
        self._entries = [(l, r) for l, r in self._entries if l >= lid]
        return before - len(self._entries)


class FileJournal:
    """A JSON-lines journal on disk.

    Each line is ``{"lid": ..., "record": {...}}``.  Writes are appended
    and flushed per entry; replay tolerates a torn final line (the record
    it described was never acknowledged, so dropping it is safe).

    Instances are picklable (the open handle is dropped and reopened in
    append mode on unpickle), so a maintainer journaling to disk can be
    shipped into a multiproc worker — the worker's writes land in the same
    file the parent later replays for crash recovery.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "a", encoding="utf-8")

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self._file = open(self.path, "a", encoding="utf-8")

    def __call__(self, lid: int, record: Record) -> None:
        line = json.dumps({"lid": lid, "record": record_to_dict(record)})
        self._file.write(line + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def replay(self) -> Iterator[Tuple[int, Record]]:
        self._file.flush()
        if not os.path.exists(self.path):
            return iter(())

        def entries() -> Iterator[Tuple[int, Record]]:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError:
                        return  # torn tail from a crash mid-write
                    yield data["lid"], record_from_dict(data["record"])

        return entries()


def recover_maintainer_core(
    name: str,
    plan: OwnershipPlan,
    journal_entries: Iterator[Tuple[int, Record]],
    config: Optional[FLStoreConfig] = None,
    new_journal: Optional[Callable[[int, Record], None]] = None,
) -> MaintainerCore:
    """Rebuild a maintainer's state from its journal after a crash.

    Replays every journaled placement through the placed-mode path, which
    restores the storage map, the assignment cursor (including skips over
    early-placed records), and the pending tag postings.  The recovered
    core resumes post-assignment exactly where the crashed one stopped —
    no LId is ever handed out twice.

    ``new_journal`` receives every replayed placement too (recovery chains
    into a fresh journal).  It must therefore be a *different* journal from
    the one ``journal_entries`` reads: replaying a journal into itself
    re-appends every entry — on a :class:`FileJournal` that is a feedback
    loop (replay lazily reads the file the replay is appending to).  To
    reuse the original journal object, recover with ``new_journal=None``
    and attach it afterwards via ``core.set_journal``.
    """
    core = MaintainerCore(name, plan, config=config, journal=new_journal)
    for lid, record in journal_entries:
        core.place(lid, record)
    return core
