"""The Controller: stateless, highly-available control plane (§5.1).

The controller is an oracle for application clients: it answers session
requests with the addresses of the log maintainers and indexers, the
ownership epoch journal, and approximate log-size information.  It also
collects load feedback from maintainers (§5.2's load-balancing hook) and is
the administrative entry point for elasticity operations (§6.3).

It never sits on the data path — clients talk to it once per session.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.config import FLStoreConfig
from ..runtime.actor import Actor
from .messages import LoadReport, SessionInfo, SessionRequest
from .range_map import OwnershipPlan


class ControllerCore:
    """Pure-logic cluster metadata registry."""

    def __init__(
        self,
        plan: OwnershipPlan,
        indexers: Optional[List[str]] = None,
        config: Optional[FLStoreConfig] = None,
    ) -> None:
        self.plan = plan
        self.indexers = list(indexers or [])
        self.config = config or FLStoreConfig()
        self._load: Dict[str, LoadReport] = {}
        self.sessions_served = 0

    def session_info(self, request_id: int) -> SessionInfo:
        self.sessions_served += 1
        return SessionInfo(
            request_id=request_id,
            maintainers=list(self.plan.current_epoch.maintainers),
            indexers=list(self.indexers),
            batch_size=self.plan.current_epoch.batch_size,
            approx_records=self.approx_records(),
            epochs=[
                (epoch.start_lid, epoch.batch_size, epoch.maintainers)
                for epoch in self.plan.epochs
            ],
            suggested_maintainer=self.least_loaded_maintainer() if self._load else None,
        )

    def note_load(self, report: LoadReport) -> None:
        self._load[report.maintainer] = report

    def approx_records(self) -> int:
        """Approximate record count from the latest load reports (§5.1)."""
        return sum(report.records_stored for report in self._load.values())

    def least_loaded_maintainer(self) -> Optional[str]:
        """Load-balancing hint: the maintainer with the fewest records."""
        current = self.plan.current_epoch.maintainers
        if not self._load:
            return current[0] if current else None
        candidates = [m for m in current if m in self._load]
        if not candidates:
            return current[0] if current else None
        return min(candidates, key=lambda m: self._load[m].records_stored)

    def add_indexer(self, name: str) -> None:
        if name not in self.indexers:
            self.indexers.append(name)


class Controller(Actor):
    """Actor adapter for :class:`ControllerCore`."""

    def __init__(
        self,
        name: str,
        plan: OwnershipPlan,
        indexers: Optional[List[str]] = None,
        config: Optional[FLStoreConfig] = None,
    ) -> None:
        super().__init__(name)
        self.core = ControllerCore(plan, indexers=indexers, config=config)

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, SessionRequest):
            self.send(sender, self.core.session_info(message.request_id))
        elif isinstance(message, LoadReport):
            self.core.note_load(message)
