"""FLStore client library (§3, §5.1).

Applications link :class:`FLStoreClient` (callback-based, actor-native) or
wrap it in :class:`BlockingFLStoreClient` for synchronous code.  The client
polls the controller once per session for the maintainer/indexer addresses
and the ownership epoch journal; after that every append and read goes
straight to the data path, routed by the deterministic LId ownership
function — the controller is never consulted again unless the session is
reset.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ..core.errors import SessionError
from ..core.record import AppendResult, LogEntry, ReadRules, Record
from ..runtime.actor import Actor
from ..runtime.local import BaseRuntime
from .messages import (
    AppendReply,
    AppendRequest,
    HeadReply,
    HeadRequest,
    LookupReply,
    LookupRequest,
    ReadReply,
    ReadRequest,
    SessionInfo,
    SessionRequest,
)
from .range_map import OwnershipPlan

Callback = Callable[[Any], None]


class FLStoreClient(Actor):
    """Callback-based application client for a single-datacenter FLStore."""

    def __init__(self, name: str, controller: str, seed: int = 0) -> None:
        super().__init__(name)
        self.controller = controller
        self._session: Optional[SessionInfo] = None
        self._plan: Optional[OwnershipPlan] = None
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, Callback] = {}
        self._queued_ops: List[Callable[[], None]] = []
        self._maintainer_cycle = None
        self._toids = itertools.count(1)
        self._host_stream = f"client/{name}"
        self._seed = seed

    # ------------------------------------------------------------------ #
    # Session bootstrap (§5.1)
    # ------------------------------------------------------------------ #

    def on_start(self) -> None:
        request_id = next(self._request_ids)
        self._pending[request_id] = self._install_session
        self.send(self.controller, SessionRequest(request_id))

    def _install_session(self, info: SessionInfo) -> None:
        self._session = info
        plan = OwnershipPlan(info.epochs[0][2], batch_size=info.epochs[0][1])
        for start_lid, batch_size, maintainers in info.epochs[1:]:
            plan.add_epoch(start_lid, maintainers, batch_size)
        self._plan = plan
        # Start at the controller's least-loaded suggestion when present
        # (§5.2's load feedback); otherwise stagger by client seed.
        maintainers = list(info.maintainers)
        if info.suggested_maintainer in maintainers:
            offset = maintainers.index(info.suggested_maintainer)
        else:
            offset = self._seed % len(maintainers) if maintainers else 0
        self._maintainer_cycle = itertools.cycle(maintainers[offset:] + maintainers[:offset])
        queued, self._queued_ops = self._queued_ops, []
        for op in queued:
            op()

    @property
    def session_ready(self) -> bool:
        return self._session is not None

    def _when_ready(self, op: Callable[[], None]) -> None:
        if self._session is None:
            self._queued_ops.append(op)
        else:
            op()

    def _next_maintainer(self) -> str:
        if self._maintainer_cycle is None:
            raise SessionError(f"client {self.name!r} has no session yet")
        return next(self._maintainer_cycle)

    # ------------------------------------------------------------------ #
    # Public API: Append / Read / Head (§3)
    # ------------------------------------------------------------------ #

    def make_record(self, body: Any, tags: Optional[Dict[str, Any]] = None) -> Record:
        """Construct a record on this client's identity stream."""
        return Record.make(self._host_stream, next(self._toids), body, tags=tags)

    def append(
        self,
        body: Any,
        tags: Optional[Dict[str, Any]] = None,
        min_lid: Optional[int] = None,
        on_done: Optional[Callback] = None,
    ) -> None:
        """Append one record; ``on_done`` receives an :class:`AppendResult`."""
        record = self.make_record(body, tags)
        self.append_records([record], min_lid=min_lid, on_done=(
            (lambda results: on_done(results[0])) if on_done else None
        ))

    def append_records(
        self,
        records: List[Record],
        min_lid: Optional[int] = None,
        on_done: Optional[Callback] = None,
    ) -> None:
        """Append a batch; ``on_done`` receives ``List[AppendResult]``."""

        def op() -> None:
            request_id = next(self._request_ids)
            if on_done is not None:
                self._pending[request_id] = lambda reply: on_done(reply.results)
            self.send(
                self._next_maintainer(),
                AppendRequest(request_id, records, min_lid=min_lid),
            )

        self._when_ready(op)

    def read_lid(self, lid: int, on_done: Callback) -> None:
        """Read one record by position; ``on_done`` gets a ``ReadReply``."""

        def op() -> None:
            assert self._plan is not None
            owner = self._plan.owner(lid)
            request_id = next(self._request_ids)
            self._pending[request_id] = on_done
            self.send(owner, ReadRequest(request_id, lid=lid))

        self._when_ready(op)

    def read_rules(self, rules: ReadRules, on_done: Callable[[List[LogEntry]], None]) -> None:
        """Rule-based read (§3): via the indexers when a tag is given,
        otherwise a scatter-gather scan of every maintainer."""
        if rules.tag_key is not None and self._has_indexers():
            self._read_via_index(rules, on_done)
        else:
            self._read_via_scan(rules, on_done)

    def _has_indexers(self) -> bool:
        return bool(self._session and self._session.indexers)

    def _read_via_index(self, rules: ReadRules, on_done: Callable[[List[LogEntry]], None]) -> None:
        def op() -> None:
            assert self._session is not None
            indexers = self._session.indexers
            indexer = indexers[hash(rules.tag_key) % len(indexers)]
            request_id = next(self._request_ids)

            def on_lookup(reply: LookupReply) -> None:
                self._fetch_lids(reply.lids, rules, on_done)

            self._pending[request_id] = on_lookup
            self.send(
                indexer,
                LookupRequest(
                    request_id,
                    tag_key=rules.tag_key,
                    tag_value=rules.tag_value,
                    tag_min_value=rules.tag_min_value,
                    limit=rules.limit,
                    most_recent=rules.most_recent,
                    max_lid=rules.max_lid,
                ),
            )

        self._when_ready(op)

    def _fetch_lids(
        self,
        lids: List[int],
        rules: ReadRules,
        on_done: Callable[[List[LogEntry]], None],
    ) -> None:
        if not lids:
            on_done([])
            return
        assert self._plan is not None
        results: Dict[int, Optional[LogEntry]] = {}

        def collect(lid: int) -> Callback:
            def handler(reply: ReadReply) -> None:
                results[lid] = reply.entries[0] if reply.entries else None
                if len(results) == len(lids):
                    entries = [results[l] for l in lids if results[l] is not None]
                    entries = [e for e in entries if rules.matches(e)]
                    if rules.limit is not None:
                        entries = entries[: rules.limit]
                    on_done(entries)

            return handler

        for lid in lids:
            request_id = next(self._request_ids)
            self._pending[request_id] = collect(lid)
            self.send(self._plan.owner(lid), ReadRequest(request_id, lid=lid))

    def _read_via_scan(self, rules: ReadRules, on_done: Callable[[List[LogEntry]], None]) -> None:
        def op() -> None:
            assert self._session is not None
            maintainers = self._session.maintainers
            replies: List[ReadReply] = []

            def collect(reply: ReadReply) -> None:
                replies.append(reply)
                if len(replies) == len(maintainers):
                    entries = [e for r in replies for e in r.entries]
                    entries.sort(key=lambda e: e.lid, reverse=rules.most_recent)
                    if rules.limit is not None:
                        entries = entries[: rules.limit]
                    on_done(entries)

            for maintainer in maintainers:
                request_id = next(self._request_ids)
                self._pending[request_id] = collect
                self.send(maintainer, ReadRequest(request_id, rules=rules))

        self._when_ready(op)

    def head(self, on_done: Callable[[int], None]) -> None:
        """Ask a maintainer for the head of the log (HL, §5.4)."""

        def op() -> None:
            request_id = next(self._request_ids)
            self._pending[request_id] = lambda reply: on_done(reply.head_lid)
            self.send(self._next_maintainer(), HeadRequest(request_id))

        self._when_ready(op)

    # ------------------------------------------------------------------ #
    # Reply dispatch
    # ------------------------------------------------------------------ #

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, SessionInfo):
            handler = self._pending.pop(message.request_id, None)
            if handler is not None:
                handler(message)
        elif isinstance(message, (AppendReply, ReadReply, HeadReply, LookupReply)):
            handler = self._pending.pop(message.request_id, None)
            if handler is not None:
                handler(message)


class BlockingFLStoreClient:
    """Synchronous facade over :class:`FLStoreClient` for tests and examples.

    Each call pumps the runtime until the reply arrives, so it only makes
    sense on the deterministic local runtime (never on a live network).
    """

    def __init__(self, client: FLStoreClient, runtime: BaseRuntime) -> None:
        self.client = client
        self.runtime = runtime

    def _await(self, start: Callable[[Callback], None]) -> Any:
        box: List[Any] = []
        start(box.append)
        self.runtime.run_until(lambda: bool(box))
        return box[0]

    def append(
        self,
        body: Any,
        tags: Optional[Dict[str, Any]] = None,
        min_lid: Optional[int] = None,
    ) -> AppendResult:
        return self._await(
            lambda cb: self.client.append(body, tags=tags, min_lid=min_lid, on_done=cb)
        )

    def append_records(self, records: List[Record], min_lid: Optional[int] = None) -> List[AppendResult]:
        return self._await(
            lambda cb: self.client.append_records(records, min_lid=min_lid, on_done=cb)
        )

    def read_lid(self, lid: int) -> ReadReply:
        return self._await(lambda cb: self.client.read_lid(lid, cb))

    def read(self, rules: ReadRules) -> List[LogEntry]:
        return self._await(lambda cb: self.client.read_rules(rules, cb))

    def head(self) -> int:
        return self._await(lambda cb: self.client.head(cb))

    def wait_until_visible(self, host: str, toid: int, max_seconds: float = 30.0) -> LogEntry:
        """Block until record ``<host, toid>`` is readable locally.

        The session guarantee applications need after telling someone
        "record X exists": pump the runtime until replication has delivered
        it.  Returns the local log entry; raises
        :class:`~repro.core.errors.RuntimeExhaustedError` on timeout.
        """
        from ..core.errors import RuntimeExhaustedError

        deadline = self.runtime.now + max_seconds
        while True:
            entries = self.read(
                ReadRules(host=host, min_toid=toid, max_toid=toid, limit=1)
            )
            if entries:
                return entries[0]
            if self.runtime.now >= deadline:
                raise RuntimeExhaustedError(
                    f"record <{host},{toid}> not visible after {max_seconds}s"
                )
            self.runtime.run_for(min(0.05, max(1e-6, deadline - self.runtime.now)))
