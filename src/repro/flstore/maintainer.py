"""Log maintainers: post-assignment storage nodes of FLStore (§5.2).

A maintainer owns the LId ranges the :class:`~repro.flstore.range_map.OwnershipPlan`
assigns it.  In **post-assignment** mode (standalone FLStore) it assigns the
next free owned LId to each record it receives — no sequencer, no
coordination.  In **placed** mode (under the Chariots pipeline) the queue
stage pre-assigns LIds and the maintainer simply stores records at the
requested positions, tolerating out-of-order arrival.

The maintainer also participates in the head-of-log gossip (§5.4), serves
reads, feeds tag postings to the indexers (§5.3), hands new entries to
replication senders, and truncates garbage-collected prefixes (§6.1).

``MaintainerCore`` is pure protocol logic (no I/O); :class:`LogMaintainer`
adapts it to the actor runtimes, and ``repro.net`` adapts it to asyncio TCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.config import FLStoreConfig
from ..core.errors import (
    GapError,
    GarbageCollectedError,
    ImmutabilityError,
    LidOutOfRangeError,
    NotOwnerError,
)
from ..core.record import AppendResult, LogEntry, ReadRules, Record, RecordId
from ..runtime.actor import Actor
from ..runtime.messages import RecordBatch
from .messages import (
    AppendReply,
    AppendRequest,
    GcReport,
    GossipHL,
    LoadReport,
    HeadReply,
    HeadRequest,
    IndexUpdate,
    PlaceRecords,
    ReadNewReply,
    ReadNewRequest,
    ReadReply,
    ReadRequest,
    TruncateBelow,
)
from .range_map import OwnershipPlan

_INF = float("inf")


@dataclass(slots=True)
class _DeferredAppend:
    """An explicit-order append waiting for its minimum LId bound (§5.4)."""

    records: List[Record]
    min_lid: int
    context: Any = None  # opaque caller cookie (the actor stores sender/req)
    results: Optional[List[AppendResult]] = None

    def ready(self, next_unassigned: int) -> bool:
        return next_unassigned > self.min_lid


class MaintainerCore:
    """Pure-logic state machine for one log maintainer."""

    def __init__(
        self,
        name: str,
        plan: OwnershipPlan,
        config: Optional[FLStoreConfig] = None,
        journal: Optional[Callable[[int, Record], None]] = None,
        archive: Optional[Callable[[int, Record], None]] = None,
    ) -> None:
        self.name = name
        self.plan = plan
        self.config = config or FLStoreConfig()
        self._journal = journal
        #: Cold-storage hook (§6.1): called with each record evicted by GC.
        self._archive = archive
        self._storage: Dict[int, Record] = {}
        self._by_rid: Dict[RecordId, int] = {}
        first = plan.first_owned_lid(name)
        #: First owned LId not yet filled (post-assign cursor / placed frontier).
        self._next_unassigned: Optional[int] = first
        #: First owned LId that has NOT been garbage collected.
        self._gc_floor: Optional[int] = first
        self._max_stored_lid = -1
        #: Gossip view: each maintainer's next unassigned LId (∞ = retired).
        self._hl_vector: Dict[str, float] = {}
        for peer in plan.maintainers():
            peer_first = plan.first_owned_lid(peer)
            self._hl_vector[peer] = _INF if peer_first is None else float(peer_first)
        self._round_end = -1
        self._refresh_round_end()
        self._sync_self_vector()
        self._deferred: List[_DeferredAppend] = []
        self._pending_postings: List[Tuple[str, object, int]] = []
        self._noop_counter = 0
        self.records_appended = 0
        self.records_placed = 0
        self.records_collected = 0

    def set_journal(self, journal: Optional[Callable[[int, Record], None]]) -> None:
        """Install (or replace) the durability hook for future placements.

        Attach before traffic flows: only placements made while a journal is
        installed can be replayed by crash recovery.
        """
        self._journal = journal

    # ------------------------------------------------------------------ #
    # Appending (post-assignment, §5.2)
    # ------------------------------------------------------------------ #

    def append(
        self,
        records: List[Record],
        min_lid: Optional[int] = None,
        context: Any = None,
    ) -> Optional[List[AppendResult]]:
        """Assign the next owned LIds to ``records`` and store them.

        Returns the assigned positions, or ``None`` if the request carried a
        ``min_lid`` bound that cannot be satisfied yet (the request is
        buffered; collect it later via :meth:`flush_deferred`).
        """
        if min_lid is not None and not self._bound_satisfied(min_lid):
            if self.config.fill_gaps_with_noops:
                self._fill_own_gaps_past(min_lid)
            else:
                self._deferred.append(_DeferredAppend(records, min_lid, context))
                return None
        return self._do_append(records)

    def _bound_satisfied(self, min_lid: int) -> bool:
        return self._next_unassigned is not None and self._next_unassigned > min_lid

    def _bulk_run_start(self, count: int) -> Optional[int]:
        """First LId of a dense run of ``count`` free owned LIds, if one is
        available at the cursor without any plan or gap checks.

        Valid when no placed record sits at or beyond the cursor
        (``_max_stored_lid < cursor`` — an O(1) summary of "no holes ahead")
        and the whole run stays inside the cached owned round.
        """
        nxt = self._next_unassigned
        if (
            nxt is not None
            and self._max_stored_lid < nxt
            and nxt + count <= self._round_end
        ):
            return nxt
        return None

    def _finish_bulk_run(self, lid_after: int) -> None:
        """Move the cursor past a dense bulk run ending at ``lid_after - 1``."""
        if lid_after >= self._round_end:
            self._next_unassigned = self.plan.next_owned_lid(self.name, lid_after - 1)
            self._refresh_round_end()
        else:
            self._next_unassigned = lid_after
        self._sync_self_vector()

    def _do_append(self, records: List[Record]) -> List[AppendResult]:
        start = self._bulk_run_start(len(records))
        if start is not None:
            storage = self._storage
            by_rid = self._by_rid
            postings = self._pending_postings
            journal = self._journal
            results = []
            lid = start
            for record in records:
                storage[lid] = record
                by_rid[record.rid] = lid
                for key, value in record.tags:
                    postings.append((key, value, lid))
                if journal is not None:
                    journal(lid, record)
                results.append(AppendResult(record.rid, lid))
                lid += 1
            self._max_stored_lid = lid - 1
            self.records_appended += len(records)
            self._finish_bulk_run(lid)
            return results
        results = []
        for record in records:
            lid = self._take_next_lid()
            self._store(lid, record)
            results.append(AppendResult(record.rid, lid))
            self.records_appended += 1
        return results

    def append_count(self, records: List[Record]) -> int:
        """Fire-and-forget bulk append: like :meth:`append` without building
        per-record results.  Used by load generators where only the count is
        acknowledged."""
        start = self._bulk_run_start(len(records))
        if start is not None:
            storage = self._storage
            by_rid = self._by_rid
            postings = self._pending_postings
            journal = self._journal
            lid = start
            for record in records:
                storage[lid] = record
                by_rid[record.rid] = lid
                for key, value in record.tags:
                    postings.append((key, value, lid))
                if journal is not None:
                    journal(lid, record)
                lid += 1
            self._max_stored_lid = lid - 1
            self.records_appended += len(records)
            self._finish_bulk_run(lid)
            return len(records)
        for record in records:
            lid = self._take_next_lid()
            self._store(lid, record)
            self.records_appended += 1
        return len(records)

    def _take_next_lid(self) -> int:
        if self._next_unassigned is None:
            raise NotOwnerError(-1, self.name)  # decommissioned maintainer
        lid = self._next_unassigned
        self._advance_cursor()
        return lid

    def _advance_cursor(self) -> None:
        assert self._next_unassigned is not None
        nxt = self._next_unassigned + 1
        # Fast path: staying inside the current owned round (no plan lookup).
        if nxt < self._round_end and nxt not in self._storage:
            self._next_unassigned = nxt
            self._hl_vector[self.name] = float(nxt)
            return
        cursor = self.plan.next_owned_lid(self.name, self._next_unassigned)
        # Skip over placed records that arrived ahead of the frontier.
        while cursor is not None and cursor in self._storage:
            cursor = self.plan.next_owned_lid(self.name, cursor)
        self._next_unassigned = cursor
        self._refresh_round_end()
        self._sync_self_vector()

    def _refresh_round_end(self) -> None:
        """Cache the exclusive end of the owned round holding the cursor.

        Epoch boundaries align with the previous epoch's round size, so a
        round never spans epochs and the cached bound stays valid until the
        cursor leaves the round.
        """
        if self._next_unassigned is None:
            self._round_end = -1
            return
        epoch = self.plan.epoch_for(self._next_unassigned)
        rel = self._next_unassigned - epoch.start_lid
        self._round_end = epoch.start_lid + (rel // epoch.batch_size + 1) * epoch.batch_size

    def _sync_self_vector(self) -> None:
        self._hl_vector[self.name] = (
            _INF if self._next_unassigned is None else float(self._next_unassigned)
        )

    def _fill_own_gaps_past(self, min_lid: int) -> None:
        """Append internal no-op records until the cursor passes ``min_lid``."""
        while self._next_unassigned is not None and self._next_unassigned <= min_lid:
            self._noop_counter += 1
            noop = Record.make(
                host=f"__noop__/{self.name}",
                toid=self._noop_counter,
                body=None,
                internal=True,
            )
            lid = self._take_next_lid()
            self._store(lid, noop)

    def flush_deferred(self) -> List[_DeferredAppend]:
        """Complete every buffered explicit-order append whose bound now holds."""
        completed: List[_DeferredAppend] = []
        remaining: List[_DeferredAppend] = []
        for deferred in self._deferred:
            if deferred.ready(self._next_unassigned if self._next_unassigned is not None else -1):
                deferred.results = self._do_append(deferred.records)
                completed.append(deferred)
            else:
                remaining.append(deferred)
        self._deferred = remaining
        return completed

    @property
    def deferred_count(self) -> int:
        return len(self._deferred)

    # ------------------------------------------------------------------ #
    # Placement (Chariots mode, §6.2)
    # ------------------------------------------------------------------ #

    def place(self, lid: int, record: Record) -> bool:
        """Store ``record`` at a queue-assigned LId.  Idempotent.

        Returns True if the record was newly stored, False if it was a
        duplicate placement (same record, same position) or already GC'd.
        """
        if self.plan.owner(lid) != self.name:
            raise NotOwnerError(lid, self.name)
        if self._gc_floor is not None and lid < self._gc_floor:
            return False  # already garbage collected; re-placement is a no-op
        existing = self._storage.get(lid)
        if existing is not None:
            if existing.rid == record.rid:
                return False
            raise ImmutabilityError(lid)
        self._store(lid, record)
        self.records_placed += 1
        if lid == self._next_unassigned:
            self._advance_cursor()
        return True

    def _store(self, lid: int, record: Record) -> None:
        self._storage[lid] = record
        self._by_rid[record.rid] = lid
        if lid > self._max_stored_lid:
            self._max_stored_lid = lid
        for key, value in record.tags:
            self._pending_postings.append((key, value, lid))
        if self._journal is not None:
            self._journal(lid, record)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def get(self, lid: int) -> LogEntry:
        if self.plan.owner(lid) != self.name:
            raise NotOwnerError(lid, self.name)
        if self._gc_floor is not None and lid < self._gc_floor:
            # Distinguish "collected" from "we never owned it before epoch".
            if lid >= (self.plan.first_owned_lid(self.name) or 0):
                raise GarbageCollectedError(lid, self._gc_floor)
        record = self._storage.get(lid)
        if record is not None:
            return LogEntry(lid, record)
        if lid < self._max_stored_lid:
            raise GapError(lid)
        raise LidOutOfRangeError(lid, self._max_stored_lid)

    def try_get(self, lid: int) -> Optional[LogEntry]:
        record = self._storage.get(lid)
        return None if record is None else LogEntry(lid, record)

    def read(self, rules: ReadRules) -> List[LogEntry]:
        """Rule-scan this maintainer's slice of the log."""
        lids = sorted(self._storage, reverse=rules.most_recent)
        matches: List[LogEntry] = []
        for lid in lids:
            entry = LogEntry(lid, self._storage[lid])
            if rules.matches(entry):
                matches.append(entry)
                if rules.limit is not None and len(matches) >= rules.limit:
                    break
        return matches

    def entries_after(self, after_lid: int, limit: int = 4096) -> Tuple[List[LogEntry], int]:
        """Owned entries with LId > ``after_lid``, below the placed frontier.

        Only the gap-free owned prefix is returned so replication senders
        never ship around holes.  Returns (entries, highest safe LId).
        """
        entries: List[LogEntry] = []
        upto = after_lid
        plan = self.plan
        storage = self._storage
        next_un = self._next_unassigned
        gc_floor = self._gc_floor
        lid = plan.next_owned_lid(self.name, after_lid)
        # Owned LIds are consecutive within a round, so walk runs with
        # ``lid += 1`` and pay the plan lookup only at run boundaries.
        while lid is not None and len(entries) < limit:
            run_end = plan.owned_run_end(lid)
            while lid < run_end and len(entries) < limit:
                if next_un is not None and lid >= next_un:
                    return entries, upto
                record = storage.get(lid)
                if record is None:
                    if gc_floor is not None and lid < gc_floor:
                        # Collected prefix: skip forward, the peer has it.
                        upto = lid
                        lid += 1
                        continue
                    return entries, upto  # hole: stop at the frontier
                entries.append(LogEntry(lid, record))
                upto = lid
                lid += 1
            if lid >= run_end:
                lid = plan.next_owned_lid(self.name, run_end - 1)
        return entries, upto

    # ------------------------------------------------------------------ #
    # Head-of-log gossip (§5.4)
    # ------------------------------------------------------------------ #

    def gossip_payload(self) -> GossipHL:
        next_lid = self._next_unassigned
        return GossipHL(self.name, -1 if next_lid is None else next_lid)

    def on_gossip(self, payload: GossipHL) -> None:
        value = _INF if payload.next_unassigned_lid < 0 else float(payload.next_unassigned_lid)
        current = self._hl_vector.get(payload.maintainer, 0.0)
        if value > current:
            self._hl_vector[payload.maintainer] = value

    def note_new_peer(self, peer: str) -> None:
        """Elasticity: include a newly added maintainer in the HL vector."""
        if peer not in self._hl_vector:
            first = self.plan.first_owned_lid(peer)
            self._hl_vector[peer] = _INF if first is None else float(first)

    def head_of_log(self) -> int:
        """Highest LId below which no gaps can exist anywhere (HL, §5.4)."""
        first_gap = min(self._hl_vector.values())
        if first_gap is _INF:  # pragma: no cover - all maintainers retired
            return self._max_stored_lid
        return int(first_gap) - 1

    # ------------------------------------------------------------------ #
    # Indexing support (§5.3)
    # ------------------------------------------------------------------ #

    def drain_postings(self) -> List[Tuple[str, object, int]]:
        postings = self._pending_postings
        self._pending_postings = []
        return postings

    # ------------------------------------------------------------------ #
    # Garbage collection (§6.1)
    # ------------------------------------------------------------------ #

    def truncate(
        self,
        toid_frontier: Dict[str, int],
        keep_from_lid: Optional[int] = None,
    ) -> int:
        """Drop the longest owned prefix fully covered by the GC frontier.

        A record is coverable when every datacenter already knows it:
        ``toid_frontier[host(r)] >= toid(r)``.  Internal no-op records are
        always coverable.  Returns the number of records dropped.
        """
        dropped = 0
        lid = self._gc_floor
        while lid is not None:
            if self._next_unassigned is not None and lid >= self._next_unassigned:
                break
            if keep_from_lid is not None and lid >= keep_from_lid:
                break
            record = self._storage.get(lid)
            if record is None:
                break
            if not record.internal:
                if toid_frontier.get(record.host, 0) < record.toid:
                    break
            if self._archive is not None and not record.internal:
                self._archive(lid, record)
            del self._storage[lid]
            self._by_rid.pop(record.rid, None)
            dropped += 1
            if not record.internal:
                self.records_collected += 1
            lid = self.plan.next_owned_lid(self.name, lid)
        self._gc_floor = lid
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def next_unassigned(self) -> Optional[int]:
        return self._next_unassigned

    @property
    def gc_floor(self) -> Optional[int]:
        return self._gc_floor

    @property
    def max_stored_lid(self) -> int:
        return self._max_stored_lid

    def stored_count(self) -> int:
        return len(self._storage)

    def stored_entries(self) -> List[LogEntry]:
        return [LogEntry(lid, self._storage[lid]) for lid in sorted(self._storage)]

    def has_record(self, rid: RecordId) -> bool:
        return rid in self._by_rid


class LogMaintainer(Actor):
    """Actor adapter exposing a :class:`MaintainerCore` to the runtimes."""

    def __init__(
        self,
        name: str,
        plan: OwnershipPlan,
        peers: List[str],
        indexers: Optional[List[str]] = None,
        config: Optional[FLStoreConfig] = None,
        journal: Optional[Callable[[int, Record], None]] = None,
        archive: Optional[Callable[[int, Record], None]] = None,
        controller: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.core = MaintainerCore(
            name, plan, config=config, journal=journal, archive=archive
        )
        self.peers = [p for p in peers if p != name]
        self.indexers = list(indexers or [])
        self.config = config or FLStoreConfig()
        self.controller = controller
        self._last_report_count = 0
        self._last_report_time = 0.0

    # -- lifecycle ------------------------------------------------------ #

    def on_start(self) -> None:
        self.set_timer(self.config.gossip_interval, self._gossip_tick, periodic=True)

    def add_peer(self, name: str) -> None:
        """Elasticity: gossip with (and track) a newly added maintainer."""
        if name != self.name and name not in self.peers:
            self.peers.append(name)
        self.core.note_new_peer(name)

    def _gossip_tick(self) -> None:
        payload = self.core.gossip_payload()
        for peer in self.peers:
            self.send(peer, payload)
        self._flush_postings()
        self._report_load()

    def _report_load(self) -> None:
        if self.controller is None:
            return
        stored = self.core.stored_count()
        elapsed = self.now - self._last_report_time
        appended = self.core.records_appended + self.core.records_placed
        rate = (appended - self._last_report_count) / elapsed if elapsed > 0 else 0.0
        self._last_report_count = appended
        self._last_report_time = self.now
        self.send(self.controller, LoadReport(self.name, stored, rate))

    def _flush_postings(self) -> None:
        if not self.indexers:
            self.core.drain_postings()
            return
        postings = self.core.drain_postings()
        if not postings:
            return
        buckets: Dict[str, List[Tuple[str, object, int]]] = {}
        for key, value, lid in postings:
            indexer = self.indexers[hash(key) % len(self.indexers)]
            buckets.setdefault(indexer, []).append((key, value, lid))
        for indexer, bucket in buckets.items():
            self.send(indexer, IndexUpdate(postings=bucket))

    # -- message handling ------------------------------------------------ #

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, AppendRequest):
            self._handle_append(sender, message)
        elif isinstance(message, PlaceRecords):
            for lid, record in message.placements:
                self.core.place(lid, record)
            self._complete_deferred()
        elif isinstance(message, ReadRequest):
            self._handle_read(sender, message)
        elif isinstance(message, ReadNewRequest):
            entries, upto = self.core.entries_after(message.after_lid, message.limit)
            self.send(sender, ReadNewReply(message.request_id, entries, upto))
        elif isinstance(message, HeadRequest):
            self.send(sender, HeadReply(message.request_id, self.core.head_of_log()))
        elif isinstance(message, RecordBatch):
            # Fire-and-forget ingest for the zero-copy wire path: a lazy
            # batch materialises its records here, straight into the
            # bulk-append fast path — no reply, no per-record results.
            self.core.append_count(message.records)
        elif isinstance(message, GossipHL):
            self.core.on_gossip(message)
        elif isinstance(message, TruncateBelow):
            self.core.truncate(message.toid_frontier, message.keep_from_lid)
            floor = self.core.gc_floor
            self.send(sender, GcReport(self.name, -1 if floor is None else floor))

    def _handle_append(self, sender: str, message: AppendRequest) -> None:
        if not message.want_results and message.min_lid is None:
            count = self.core.append_count(message.records)
            self.send(sender, AppendReply(message.request_id, [], count=count))
            return
        results = self.core.append(
            message.records,
            min_lid=message.min_lid,
            context=(sender, message.request_id),
        )
        if results is not None:
            self.send(sender, AppendReply(message.request_id, results))
        self._complete_deferred()

    def _complete_deferred(self) -> None:
        for deferred in self.core.flush_deferred():
            reply_to, request_id = deferred.context
            self.send(reply_to, AppendReply(request_id, deferred.results or []))

    def _handle_read(self, sender: str, message: ReadRequest) -> None:
        try:
            if message.lid is not None:
                entries = [self.core.get(message.lid)]
            elif message.rules is not None:
                entries = self.core.read(message.rules)
            else:
                entries = []
        except (GapError, GarbageCollectedError, LidOutOfRangeError, NotOwnerError) as exc:
            self.send(sender, ReadReply(message.request_id, [], error=str(exc)))
            return
        self.send(sender, ReadReply(message.request_id, entries))
