"""FLStore: the sequencer-free distributed shared log within a datacenter (§5)."""

from .archive import ArchiveStore, TieredReader
from .client import BlockingFLStoreClient, FLStoreClient
from .controller import Controller, ControllerCore
from .indexer import Indexer, IndexerCore
from .journal import FileJournal, MemoryJournal, recover_maintainer_core
from .maintainer import LogMaintainer, MaintainerCore
from .range_map import OwnershipPlan, RangeEpoch
from .store import FLStore

__all__ = [
    "ArchiveStore",
    "BlockingFLStoreClient",
    "Controller",
    "ControllerCore",
    "FLStore",
    "FLStoreClient",
    "FileJournal",
    "Indexer",
    "IndexerCore",
    "LogMaintainer",
    "MaintainerCore",
    "MemoryJournal",
    "OwnershipPlan",
    "RangeEpoch",
    "TieredReader",
    "recover_maintainer_core",
]
