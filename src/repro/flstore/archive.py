"""Cold storage for garbage-collected records (§6.1).

"If the user choses not to garbage collect the records then they may employ
a cold storage solution to archive older records."  This module is that
solution: an :class:`ArchiveStore` receives every record the maintainers
evict (via the maintainer's ``archive`` hook) and keeps it readable — so
the *combined* view of archive plus live log still covers the entire
history, which is what auditing and time-travel reads (§1) need.
"""

from __future__ import annotations

import json
from bisect import insort
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import LidOutOfRangeError
from ..core.record import LogEntry, ReadRules, Record
from ..net.protocol import record_from_dict, record_to_dict


class ArchiveStore:
    """Append-only cold storage, indexed by LId and tag key."""

    def __init__(self) -> None:
        self._records: Dict[int, Record] = {}
        self._lids: List[int] = []
        self._tag_index: Dict[str, List[int]] = {}

    # -- the maintainer-facing hook ---------------------------------------- #

    def __call__(self, lid: int, record: Record) -> None:
        """Accept an evicted record (idempotent for retried evictions)."""
        if lid in self._records:
            return
        self._records[lid] = record
        insort(self._lids, lid)
        for key, _value in record.tags:
            bucket = self._tag_index.setdefault(key, [])
            insort(bucket, lid)

    # -- reads --------------------------------------------------------------- #

    def get(self, lid: int) -> LogEntry:
        record = self._records.get(lid)
        if record is None:
            raise LidOutOfRangeError(lid, max(self._lids, default=-1))
        return LogEntry(lid, record)

    def try_get(self, lid: int) -> Optional[LogEntry]:
        record = self._records.get(lid)
        return None if record is None else LogEntry(lid, record)

    def read(self, rules: ReadRules) -> List[LogEntry]:
        if rules.tag_key is not None:
            lids = self._tag_index.get(rules.tag_key, [])
        else:
            lids = self._lids
        order = reversed(lids) if rules.most_recent else iter(lids)
        matches: List[LogEntry] = []
        for lid in order:
            entry = LogEntry(lid, self._records[lid])
            if rules.matches(entry):
                matches.append(entry)
                if rules.limit is not None and len(matches) >= rules.limit:
                    break
        return matches

    def __len__(self) -> int:
        return len(self._records)

    def lid_range(self) -> Optional[Tuple[int, int]]:
        if not self._lids:
            return None
        return (self._lids[0], self._lids[-1])

    # -- persistence ---------------------------------------------------------- #

    def dump(self, path: str) -> int:
        """Write the archive as JSON lines; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for lid in self._lids:
                handle.write(
                    json.dumps({"lid": lid, "record": record_to_dict(self._records[lid])})
                    + "\n"
                )
        return len(self._lids)

    @classmethod
    def load(cls, path: str) -> "ArchiveStore":
        store = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                store(data["lid"], record_from_dict(data["record"]))
        return store


class TieredReader:
    """Reads that fall back from the live log to the archive.

    Gives applications the paper's "keep the log forever" semantics even
    when the maintainers garbage-collect aggressively: recent positions are
    served by a live client, collected ones by the archive.
    """

    def __init__(self, live_client: Any, archive: ArchiveStore) -> None:
        self.live = live_client
        self.archive = archive

    def read_lid(self, lid: int) -> Optional[LogEntry]:
        reply = self.live.read_lid(lid)
        entries = getattr(reply, "entries", None)
        if entries:
            return entries[0]
        return self.archive.try_get(lid)

    def read(self, rules: ReadRules) -> List[LogEntry]:
        entries = list(self.live.read(rules))
        remaining = None if rules.limit is None else rules.limit - len(entries)
        if remaining is None or remaining > 0:
            archived = self.archive.read(
                ReadRules(
                    min_lid=rules.min_lid,
                    max_lid=rules.max_lid,
                    host=rules.host,
                    min_toid=rules.min_toid,
                    max_toid=rules.max_toid,
                    tag_key=rules.tag_key,
                    tag_value=rules.tag_value,
                    tag_min_value=rules.tag_min_value,
                    limit=remaining,
                    most_recent=rules.most_recent,
                    include_internal=rules.include_internal,
                )
            )
            seen = {entry.lid for entry in entries}
            entries.extend(e for e in archived if e.lid not in seen)
        entries.sort(key=lambda e: e.lid, reverse=rules.most_recent)
        if rules.limit is not None:
            entries = entries[: rules.limit]
        return entries
