"""Protocol messages for FLStore (client ↔ maintainer ↔ indexer ↔ controller).

All payload-bearing messages derive from :class:`~repro.runtime.messages.Payload`
so the capacity simulator can charge CPU and NIC time for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.record import AppendResult, LogEntry, ReadRules, Record
from ..runtime.messages import Payload

# --------------------------------------------------------------------- #
# Appends
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class AppendRequest(Payload):
    """Client → maintainer: append these records (post-assignment, §5.2).

    ``min_lid`` implements explicit order requests (§5.4): the maintainer
    must assign every record in this request a LId strictly greater than
    ``min_lid``, buffering if necessary.
    """

    request_id: int
    records: List[Record] = field(default_factory=list)
    min_lid: Optional[int] = None
    #: False = fire-and-forget: the reply carries only a count, which spares
    #: the maintainer building per-record results under load generation.
    want_results: bool = True


@dataclass(slots=True)
class AppendReply(Payload):
    """Maintainer → client: assigned TOIds/LIds for an append request."""

    request_id: int
    results: List[AppendResult] = field(default_factory=list)
    count: int = 0
    error: Optional[str] = None


@dataclass(slots=True)
class PlaceRecords(Payload):
    """Queue → maintainer: store records at pre-assigned LIds (Chariots mode)."""

    placements: List[Tuple[int, Record]] = field(default_factory=list)

    def record_count(self) -> int:
        return len(self.placements)

    def wire_size(self, record_size: int = 512) -> int:
        return 64 + sum(8 + record.size_bytes(record_size) for _lid, record in self.placements)


# --------------------------------------------------------------------- #
# Reads
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class ReadRequest(Payload):
    """Client → maintainer: read by LId, or rule-scan the maintainer's slice."""

    request_id: int
    lid: Optional[int] = None
    rules: Optional[ReadRules] = None


@dataclass(slots=True)
class ReadReply(Payload):
    request_id: int
    entries: List[LogEntry] = field(default_factory=list)
    error: Optional[str] = None

    def record_count(self) -> int:
        return len(self.entries)

    def wire_size(self, record_size: int = 512) -> int:
        return 64 + sum(8 + e.record.size_bytes(record_size) for e in self.entries)


@dataclass(slots=True)
class ReadNewRequest(Payload):
    """Sender → maintainer: entries with LId > ``after_lid`` that are safe
    to ship (assigned, in owner order).  Used by replication senders (§6.2)."""

    request_id: int
    after_lid: int = -1
    limit: int = 4096


@dataclass(slots=True)
class ReadNewReply(Payload):
    request_id: int
    entries: List[LogEntry] = field(default_factory=list)
    #: Highest contiguously-assigned owned LId at the maintainer.
    upto: int = -1

    def record_count(self) -> int:
        return len(self.entries)

    def wire_size(self, record_size: int = 512) -> int:
        return 64 + sum(8 + e.record.size_bytes(record_size) for e in self.entries)


# --------------------------------------------------------------------- #
# Head-of-log gossip (§5.4)
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class GossipHL:
    """Maintainer → maintainer: my next unassigned LId (fixed-size, §5.4)."""

    maintainer: str
    next_unassigned_lid: int


@dataclass(slots=True)
class HeadRequest:
    """Client → maintainer: what is the head of the log (HL)?"""

    request_id: int


@dataclass(slots=True)
class HeadReply:
    request_id: int
    head_lid: int


# --------------------------------------------------------------------- #
# Indexing (§5.3)
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class IndexUpdate(Payload):
    """Maintainer → indexer: tag postings for newly stored records."""

    #: (tag key, tag value, lid) triples.
    postings: List[Tuple[str, object, int]] = field(default_factory=list)

    def record_count(self) -> int:
        return len(self.postings)

    def wire_size(self, record_size: int = 512) -> int:
        return 64 + 24 * len(self.postings)


@dataclass(slots=True)
class LookupRequest:
    """Client → indexer: find LIds matching a tag rule (§5.3)."""

    request_id: int
    tag_key: str
    tag_value: Optional[object] = None
    tag_min_value: Optional[object] = None
    limit: Optional[int] = None
    most_recent: bool = True
    max_lid: Optional[int] = None


@dataclass(slots=True)
class LookupReply:
    request_id: int
    lids: List[int] = field(default_factory=list)
    error: Optional[str] = None


# --------------------------------------------------------------------- #
# Control plane (§5.1)
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class SessionRequest:
    """Client → controller: initiate a session (§5.1)."""

    request_id: int


@dataclass(slots=True)
class SessionInfo:
    """Controller → client: cluster metadata for the session.

    Carries maintainer/indexer addresses, the ownership journal, and the
    approximate record count the paper mentions.
    """

    request_id: int
    maintainers: List[str] = field(default_factory=list)
    indexers: List[str] = field(default_factory=list)
    batch_size: int = 1000
    approx_records: int = 0
    #: Serialised epoch journal: (start_lid, batch_size, maintainer tuple).
    epochs: List[Tuple[int, int, Tuple[str, ...]]] = field(default_factory=list)
    #: Load-balancing hint from the controller's load reports (§5.2).
    suggested_maintainer: Optional[str] = None


@dataclass(slots=True)
class LoadReport:
    """Maintainer → controller: approximate load feedback (§5.2)."""

    maintainer: str
    records_stored: int
    appends_per_second: float = 0.0


@dataclass(slots=True)
class PruneIndexBelow:
    """GC coordinator → indexer: drop postings for collected positions."""

    below_lid: int


@dataclass(slots=True)
class GcReport:
    """Maintainer → GC coordinator: my collection floor after a truncate."""

    maintainer: str
    gc_floor: int


@dataclass(slots=True)
class TruncateBelow:
    """GC coordinator → maintainer/indexer: drop state below the frontier.

    ``toid_frontier`` maps host datacenter → highest GC-eligible TOId; the
    maintainer truncates the longest owned prefix entirely covered by it.
    """

    toid_frontier: Dict[str, int] = field(default_factory=dict)
    #: Never truncate at or above this LId even if eligible (retention floor).
    keep_from_lid: Optional[int] = None
