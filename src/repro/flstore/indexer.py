"""Distributed tag indexers (§5.3).

Indexers provide access to log maintainers by tag information: maintainers
stream ``(tag key, tag value, LId)`` postings to the indexer championing the
tag key (hash partitioning), and clients look up LIds by tag rules before
reading the records from the owning maintainers.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Dict, List, Optional, Tuple

from ..runtime.actor import Actor
from .messages import IndexUpdate, LookupReply, LookupRequest, PruneIndexBelow


class IndexerCore:
    """Pure-logic posting store for one indexer."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: tag key -> LId-sorted list of (lid, value) postings.
        self._postings: Dict[str, List[Tuple[int, object]]] = {}
        self.postings_stored = 0

    def add(self, key: str, value: object, lid: int) -> None:
        bucket = self._postings.setdefault(key, [])
        insort(bucket, (lid, value))
        self.postings_stored += 1

    def add_many(self, postings: List[Tuple[str, object, int]]) -> None:
        for key, value, lid in postings:
            self.add(key, value, lid)

    def lookup(
        self,
        tag_key: str,
        tag_value: Optional[object] = None,
        tag_min_value: Optional[object] = None,
        limit: Optional[int] = None,
        most_recent: bool = True,
        max_lid: Optional[int] = None,
    ) -> List[int]:
        """LIds of records tagged ``tag_key`` matching the value rule.

        ``max_lid`` bounds the search to positions at or below it — this is
        how Hyksos reads "the most recent write at a position less than i"
        for snapshot get-transactions (§4.1, Algorithm 1).
        """
        bucket = self._postings.get(tag_key, [])
        if max_lid is not None:
            cut = bisect_left(bucket, (max_lid + 1, float("-inf")))
            bucket = bucket[:cut]
        order = reversed(bucket) if most_recent else iter(bucket)
        lids: List[int] = []
        for lid, value in order:
            if tag_value is not None and value != tag_value:
                continue
            if tag_min_value is not None and (value is None or value < tag_min_value):
                continue
            lids.append(lid)
            if limit is not None and len(lids) >= limit:
                break
        return lids

    def prune_below(self, lid: int) -> int:
        """Drop postings for garbage-collected positions.  Returns count."""
        dropped = 0
        for key in list(self._postings):
            bucket = self._postings[key]
            cut = bisect_left(bucket, (lid, float("-inf")))
            if cut:
                del bucket[:cut]
                dropped += cut
            if not bucket:
                del self._postings[key]
        self.postings_stored -= dropped
        return dropped

    def keys(self) -> List[str]:
        return sorted(self._postings)


class Indexer(Actor):
    """Actor adapter for :class:`IndexerCore`."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.core = IndexerCore(name)

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, IndexUpdate):
            self.core.add_many(message.postings)
        elif isinstance(message, LookupRequest):
            lids = self.core.lookup(
                message.tag_key,
                tag_value=message.tag_value,
                tag_min_value=message.tag_min_value,
                limit=message.limit,
                most_recent=message.most_recent,
                max_lid=message.max_lid,
            )
            self.send(sender, LookupReply(message.request_id, lids))
        elif isinstance(message, PruneIndexBelow):
            self.core.prune_below(message.below_lid)
