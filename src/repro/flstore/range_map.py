"""Deterministic LId ownership: round-robin ranges with elasticity epochs.

§5.2 (Figure 4): the shared log is split into *rounds* of ``batch_size``
consecutive LIds, assigned round-robin to the maintainers.  With maintainers
``[A, B, C]`` and batch size 1000, A owns LIds 0–999, B owns 1000–1999,
C owns 2000–2999, A owns 3000–3999, and so on.  Because the mapping is a
pure function of the LId, no coordination is ever needed to find a record's
owner — the property that removes CORFU's sequencer.

§6.3 ("Log maintainers" elasticity): growing or shrinking the maintainer
fleet uses *future reassignment* — a new mapping that takes effect at a
future LId, recorded here as an :class:`RangeEpoch`.  Old records stay
where the epoch that covered them put them; readers consult the epoch
journal (this plan) to locate them, exactly as the paper's "epoch journal"
describes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class RangeEpoch:
    """One era of the ownership journal: a mapping effective from a LId."""

    start_lid: int
    batch_size: int
    maintainers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.start_lid < 0:
            raise ConfigurationError("epoch start_lid must be >= 0")
        if self.batch_size < 1:
            raise ConfigurationError("epoch batch_size must be >= 1")
        if not self.maintainers:
            raise ConfigurationError("epoch needs at least one maintainer")
        if len(set(self.maintainers)) != len(self.maintainers):
            raise ConfigurationError("duplicate maintainer in epoch")

    def owner(self, lid: int) -> str:
        """Owner of ``lid``; caller must ensure the lid is in this epoch."""
        rel = lid - self.start_lid
        round_index = rel // self.batch_size
        return self.maintainers[round_index % len(self.maintainers)]

    def next_owned(self, name: str, after_lid: int) -> Optional[int]:
        """Smallest LId in this epoch owned by ``name`` strictly after
        ``after_lid`` (ignoring the epoch's end — caller bounds it)."""
        if name not in self.maintainers:
            return None
        m = self.maintainers.index(name)
        n = len(self.maintainers)
        target = max(after_lid + 1, self.start_lid) - self.start_lid
        round_index, _offset = divmod(target, self.batch_size)
        if round_index % n == m:
            return self.start_lid + target
        delta = (m - round_index % n) % n
        return self.start_lid + (round_index + delta) * self.batch_size


class OwnershipPlan:
    """The epoch journal: a sequence of range epochs covering all LIds.

    The first epoch must start at LId 0.  Later epochs (added by the
    elasticity machinery) take effect at their ``start_lid``; the previous
    epoch implicitly ends there.
    """

    def __init__(self, maintainers: Sequence[str], batch_size: int = 1000) -> None:
        self._epochs: List[RangeEpoch] = [RangeEpoch(0, batch_size, tuple(maintainers))]
        self._starts: List[int] = [0]

    # ------------------------------------------------------------------ #
    # Journal maintenance
    # ------------------------------------------------------------------ #

    @property
    def epochs(self) -> List[RangeEpoch]:
        return list(self._epochs)

    @property
    def current_epoch(self) -> RangeEpoch:
        return self._epochs[-1]

    def maintainers(self) -> List[str]:
        """Every maintainer named by any epoch (union over the journal)."""
        seen: List[str] = []
        for epoch in self._epochs:
            for name in epoch.maintainers:
                if name not in seen:
                    seen.append(name)
        return seen

    def add_epoch(
        self,
        start_lid: int,
        maintainers: Sequence[str],
        batch_size: Optional[int] = None,
    ) -> RangeEpoch:
        """Schedule a future reassignment effective at ``start_lid``.

        ``start_lid`` must exceed the previous epoch's start and fall on one
        of its round boundaries, so no round is split between epochs.
        """
        last = self._epochs[-1]
        if start_lid <= last.start_lid:
            raise ConfigurationError(
                f"new epoch at {start_lid} must start after {last.start_lid}"
            )
        if (start_lid - last.start_lid) % last.batch_size != 0:
            raise ConfigurationError(
                f"epoch boundary {start_lid} does not align with round size "
                f"{last.batch_size} of the prior epoch"
            )
        epoch = RangeEpoch(start_lid, batch_size or last.batch_size, tuple(maintainers))
        self._epochs.append(epoch)
        self._starts.append(start_lid)
        return epoch

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def epoch_for(self, lid: int) -> RangeEpoch:
        if lid < 0:
            raise ConfigurationError(f"LIds are non-negative, got {lid}")
        index = bisect_right(self._starts, lid) - 1
        return self._epochs[index]

    def owner(self, lid: int) -> str:
        """The maintainer responsible for ``lid`` (pure function, no RPC)."""
        return self.epoch_for(lid).owner(lid)

    def owned_run_end(self, lid: int) -> int:
        """Exclusive end of the single-owner run of LIds containing ``lid``.

        Every LId in ``[lid, owned_run_end(lid))`` has the same owner as
        ``lid``, letting batch assignment amortise one ownership lookup over
        a whole round instead of paying a bisect per record.  Epoch
        boundaries align with the prior epoch's round grid, so a run never
        spans epochs; the clamp below is a safety net.
        """
        if lid < 0:
            raise ConfigurationError(f"LIds are non-negative, got {lid}")
        index = bisect_right(self._starts, lid) - 1
        epoch = self._epochs[index]
        rel = lid - epoch.start_lid
        end = epoch.start_lid + (rel // epoch.batch_size + 1) * epoch.batch_size
        if index + 1 < len(self._epochs):
            end = min(end, self._starts[index + 1])
        return end

    def next_owned_lid(self, name: str, after_lid: int) -> Optional[int]:
        """Smallest LId owned by ``name`` strictly greater than ``after_lid``.

        Walks epochs, honouring their boundaries.  Returns ``None`` only if
        ``name`` appears in no epoch from that point on (decommissioned).
        """
        start_index = bisect_right(self._starts, max(after_lid, 0)) - 1
        if after_lid < 0:
            start_index = 0
        for i in range(start_index, len(self._epochs)):
            epoch = self._epochs[i]
            end = self._starts[i + 1] if i + 1 < len(self._epochs) else None
            candidate = epoch.next_owned(name, after_lid)
            if candidate is not None and (end is None or candidate < end):
                return candidate
        return None

    def first_owned_lid(self, name: str) -> Optional[int]:
        return self.next_owned_lid(name, -1)

    def owned_lids(self, name: str, upto: int) -> Iterator[int]:
        """Every LId in ``[0, upto]`` owned by ``name``, ascending."""
        lid = self.first_owned_lid(name)
        while lid is not None and lid <= upto:
            yield lid
            lid = self.next_owned_lid(name, lid)
