"""Benchmark harness: builds simulated deployments matching §7's setups.

Every experiment in the paper's evaluation maps to one function here:

* :func:`run_flstore_sim` — client machines offering a target append load to
  an FLStore deployment (Figures 7 and 8).
* :func:`run_pipeline_sim` — a full single-datacenter Chariots pipeline
  under client load, reporting per-machine throughput (Tables 2–5) and
  per-second timeseries (Figure 9).
* :func:`run_corfu_sim` — the CORFU-style sequencer baseline under the same
  load (the scaling ablation).

All functions return plain result objects with the measured rates; the
``benchmarks/`` scripts print them in the shape of the paper's tables and
figures and assert the qualitative claims.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos.plan import FaultPlan

from ..baseline.corfu import CorfuLog
from ..baseline.sequencer import ReservedRange, SequencerRequest
from ..chariots.messages import DraftBatch, DraftRecord
from ..chariots.pipeline import DatacenterPipeline
from ..core.config import (
    PRIVATE_CLOUD,
    PUBLIC_CLOUD,
    DeploymentSpec,
    FLStoreConfig,
    MachineProfile,
    PipelineConfig,
)
from ..flstore.messages import AppendRequest, PlaceRecords
from ..flstore.range_map import OwnershipPlan
from ..flstore.store import FLStore
from ..core.record import Record
from ..runtime.actor import Actor
from ..sim.kernel import SimRuntime
from ..sim.workload import LoadClient

#: Machine profile for pure load generators (Figures 7–8 drive maintainers
#: from separate machines whose own capacity must not be the bottleneck).
GENERATOR = MachineProfile(
    name="load-generator",
    per_record_cost=1.0 / 4_000_000,
    nic_bandwidth_bytes=10e9 / 8,
    saturation_queue=1_000_000,
    overload_penalty=0.0,
)


def _template_record(record_size: int, host: str = "bench") -> Record:
    """A single reusable record of the experiment's wire size (512 B, §7)."""
    return Record.make(host, 1, b"\x00" * record_size)


# ===================================================================== #
# FLStore (Figures 7 and 8)
# ===================================================================== #


@dataclass
class FLStoreSimResult:
    n_maintainers: int
    target_per_maintainer: float
    achieved_total: float
    per_maintainer: Dict[str, float]
    duration: float
    records_stored: int
    #: Head of the log (HL) as gossip left it at the end of the run, and the
    #: highest LId actually assigned — their gap is the HL staleness.
    head_of_log: int = -1
    max_assigned_lid: int = -1

    @property
    def head_lag_records(self) -> int:
        """Records assigned but not yet covered by the head of the log."""
        return max(0, self.max_assigned_lid - self.head_of_log)

    @property
    def achieved_per_maintainer(self) -> float:
        return self.achieved_total / self.n_maintainers

    @property
    def perfect_scaling_fraction(self) -> float:
        """Achieved vs (n × single-maintainer achieved at the same target)."""
        singles = list(self.per_maintainer.values())
        best = max(singles) if singles else 0.0
        if best <= 0:
            return 0.0
        return self.achieved_total / (best * self.n_maintainers)


def run_flstore_sim(
    n_maintainers: int = 1,
    target_per_maintainer: float = 125_000.0,
    maintainer_profile: MachineProfile = PUBLIC_CLOUD,
    duration: float = 1.5,
    warmup: float = 0.4,
    client_batch: int = 500,
    record_size: int = 512,
    lid_batch: int = 1000,
    gossip_interval: float = 0.005,
    shared_nic: bool = False,
    config: Optional[FLStoreConfig] = None,
    chaos: Optional["FaultPlan"] = None,
) -> FLStoreSimResult:
    """Offer ``target_per_maintainer`` appends/s to each maintainer (§7.1).

    One generator client machine per maintainer, as in the paper ("an
    identical number of client machines were used to generate records").
    ``chaos`` installs a seeded :class:`~repro.chaos.plan.FaultPlan` on the
    simulated network (the scenario harness's fault injection path).
    """
    runtime = SimRuntime(record_size=record_size, chaos=chaos)
    if config is None:
        config = FLStoreConfig(batch_size=lid_batch, gossip_interval=gossip_interval)

    def place_data(actor: Actor) -> None:
        runtime.place_on_new_machine(
            actor, profile=maintainer_profile, shared_nic=shared_nic
        )

    store = FLStore(
        runtime,
        n_maintainers=n_maintainers,
        n_indexers=0,
        batch_size=lid_batch,
        config=config,
        placer=place_data,
    )

    template = _template_record(record_size)

    def factory(client_name: str, batch_index: int, n: int) -> AppendRequest:
        return AppendRequest(
            request_id=batch_index, records=[template] * n, want_results=False
        )

    for i, maintainer in enumerate(store.maintainers):
        client = LoadClient(
            f"loadgen/{i}",
            targets=[maintainer.name],
            batch_factory=factory,
            target_rate=target_per_maintainer,
            batch_size=client_batch,
            max_outstanding=8,
        )
        runtime.place_on_new_machine(client, profile=GENERATOR)

    runtime.run(until_time=duration)

    per_maintainer = {
        m.name: runtime.metrics.rate(m.name, "in_records", warmup, duration)
        for m in store.maintainers
    }
    max_assigned = max(m.core.max_stored_lid for m in store.maintainers)
    return FLStoreSimResult(
        n_maintainers=n_maintainers,
        target_per_maintainer=target_per_maintainer,
        achieved_total=sum(per_maintainer.values()),
        per_maintainer=per_maintainer,
        duration=duration,
        records_stored=store.total_records(),
        head_of_log=store.head_of_log(),
        max_assigned_lid=max_assigned,
    )


# ===================================================================== #
# Chariots pipeline (Tables 2–5, Figure 9)
# ===================================================================== #

#: Paper table stage names in pipeline order.  "Store" is the FLStore log
#: maintainer stage; the queue stage appears as "Queue" (the paper's tables
#: print it as "Maintainer", see EXPERIMENTS.md for the mapping note).
PIPELINE_STAGES: Tuple[Tuple[str, str, str], ...] = (
    ("Client", "client/", "out_records"),
    ("Batcher", "batcher/", "in_records"),
    ("Filter", "filter/", "in_records"),
    ("Queue", "queue/", "in_records"),
    ("Store", "store/", "in_records"),
)


@dataclass
class PipelineSimResult:
    stage_rates: Dict[str, Dict[str, float]]  # stage -> machine -> rate
    duration: float
    records_stored: int
    timeseries: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Host seconds spent inside ``runtime.run`` — the implementation's own
    #: cost of simulating the run, tracked by the perf-regression harness.
    wall_clock: float = 0.0

    def stage_total(self, stage: str) -> float:
        return sum(self.stage_rates.get(stage, {}).values())

    def bottleneck(self) -> str:
        """The most-upstream stage that absorbs clearly less than it is fed.

        Walking the pipeline in order, the first stage whose total rate
        falls below 95% of the previous stage's total is the constraint;
        if none does, the clients are the limit (the Table 2 situation).
        """
        order = [s for s, _, _ in PIPELINE_STAGES]
        for upstream, stage in zip(order, order[1:]):
            fed = self.stage_total(upstream)
            absorbed = self.stage_total(stage)
            if fed > 0 and absorbed < 0.95 * fed:
                return stage
        return "Client"

    def rows(self) -> List[Tuple[str, str, float]]:
        """(stage, machine, K records/s) rows, pipeline order — the tables."""
        out = []
        for stage, _prefix, _metric in PIPELINE_STAGES:
            for machine, rate in sorted(self.stage_rates.get(stage, {}).items()):
                out.append((stage, machine, rate))
        return out


def run_pipeline_sim(
    clients: int = 1,
    batchers: int = 1,
    filters: int = 1,
    queues: int = 1,
    maintainers: int = 1,
    senders: int = 1,
    receivers: int = 1,
    client_target: float = 130_000.0,
    total_records: Optional[int] = None,
    profile: MachineProfile = PRIVATE_CLOUD,
    duration: float = 1.5,
    warmup: float = 0.4,
    client_batch: int = 500,
    record_size: int = 512,
    lid_batch: int = 1000,
    timeseries_for: Tuple[str, ...] = (),
    timeseries_bin: float = 0.1,
    run_past_load: float = 0.0,
    shared_nic: bool = False,
    pipeline_config: Optional[PipelineConfig] = None,
    flstore_config: Optional[FLStoreConfig] = None,
    chaos: Optional["FaultPlan"] = None,
) -> PipelineSimResult:
    """One datacenter's full pipeline under client load (§7.2).

    ``total_records`` bounds generation (Figure 9's fixed-size experiment);
    ``run_past_load`` keeps simulating after the load window so draining
    backlogs remain observable in the timeseries.  ``pipeline_config`` /
    ``flstore_config`` / ``chaos`` let the scenario harness exercise
    backpressure limits and fault plans without bespoke setup code.
    """
    runtime = SimRuntime(record_size=record_size, chaos=chaos)
    dc = "A"

    def place_data(actor: Actor) -> None:
        runtime.place_on_new_machine(actor, profile=profile, shared_nic=shared_nic)

    pipeline = DatacenterPipeline(
        runtime,
        dc,
        [dc],
        spec=DeploymentSpec(
            clients=1,  # bench drives its own clients below
            batchers=batchers,
            filters=filters,
            queues=queues,
            maintainers=maintainers,
            senders=senders,
            receivers=receivers,
        ),
        batch_size=lid_batch,
        pipeline_config=pipeline_config
        or PipelineConfig(
            batcher_flush_threshold=client_batch,
            batcher_flush_interval=0.002,
        ),
        flstore_config=flstore_config,
        n_indexers=0,
        placer=place_data,
    )

    body = b"\x00" * record_size
    per_client = None if total_records is None else total_records // clients
    for i in range(clients):
        seq_counter = itertools.count(1)

        def factory(
            client_name: str, batch_index: int, n: int, counter=seq_counter
        ) -> DraftBatch:
            drafts = [
                DraftRecord(client=client_name, seq=next(counter), body=body)
                for _ in range(n)
            ]
            return DraftBatch(drafts)

        client = LoadClient(
            f"{dc}/client/{i}",
            targets=[pipeline.batchers[i % batchers].name],
            batch_factory=factory,
            target_rate=client_target,
            batch_size=client_batch,
            total_records=per_client,
            max_outstanding=4,
        )
        runtime.place_on_new_machine(client, profile=profile, shared_nic=shared_nic)

    wall_start = perf_counter()
    runtime.run(until_time=duration + run_past_load)
    wall_clock = perf_counter() - wall_start

    stage_rates: Dict[str, Dict[str, float]] = {}
    for stage, prefix, metric in PIPELINE_STAGES:
        rates: Dict[str, float] = {}
        for source in runtime.metrics.sources(metric):
            if source.startswith(f"{dc}/{prefix}"):
                rates[source] = runtime.metrics.rate(source, metric, warmup, duration)
        stage_rates[stage] = rates

    timeseries: Dict[str, List[Tuple[float, float]]] = {}
    for source in timeseries_for:
        metric = "out_records" if "/client/" in source else "in_records"
        timeseries[source] = runtime.metrics.timeseries(source, metric, timeseries_bin)

    return PipelineSimResult(
        stage_rates=stage_rates,
        duration=duration,
        records_stored=pipeline.total_records(),
        timeseries=timeseries,
        wall_clock=wall_clock,
    )


# ===================================================================== #
# CORFU baseline (scaling ablation)
# ===================================================================== #


class CorfuLoadClient(Actor):
    """Paced CORFU client: reserve positions, then write to storage units."""

    def __init__(
        self,
        name: str,
        sequencer: str,
        plan: OwnershipPlan,
        template: Record,
        target_rate: float,
        grant_batch: int = 16,
        max_outstanding: int = 32,
    ) -> None:
        super().__init__(name)
        self.sequencer = sequencer
        self.plan = plan
        self.template = template
        self.target_rate = target_rate
        self.grant_batch = grant_batch
        self.max_outstanding = max_outstanding
        self._outstanding = 0
        self._request_ids = itertools.count(1)
        self.records_written = 0

    def on_start(self) -> None:
        interval = self.grant_batch / self.target_rate

        def tick() -> None:
            if self._outstanding >= self.max_outstanding:
                return
            self._outstanding += 1
            self.send(
                self.sequencer,
                SequencerRequest(next(self._request_ids), count=self.grant_batch),
            )

        self.set_timer(interval, tick, periodic=True)

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ReservedRange):
            return
        self._outstanding -= 1
        placements: Dict[str, PlaceRecords] = {}
        for offset in range(message.count):
            lid = message.start + offset
            owner = self.plan.owner(lid)
            placements.setdefault(owner, PlaceRecords()).placements.append(
                (lid, self.template)
            )
        for owner, batch in placements.items():
            self.send(owner, batch)
        self.records_written += message.count


@dataclass
class CorfuSimResult:
    n_units: int
    target_per_unit: float
    achieved_total: float
    sequencer_grants_per_second: float
    duration: float


def run_corfu_sim(
    n_units: int = 1,
    target_per_unit: float = 125_000.0,
    unit_profile: MachineProfile = PUBLIC_CLOUD,
    sequencer_capacity: float = 600_000.0,
    grant_batch: int = 16,
    duration: float = 1.5,
    warmup: float = 0.4,
    record_size: int = 512,
    lid_batch: int = 1000,
    chaos: Optional["FaultPlan"] = None,
) -> CorfuSimResult:
    """The sequencer-based comparator under the Figure 8 workload shape.

    ``sequencer_capacity`` is the sequencer's grant-requests/s ceiling (its
    published bottleneck); appends/s are capped near
    ``sequencer_capacity × grant_batch`` no matter how many units exist.
    """
    runtime = SimRuntime(record_size=record_size, chaos=chaos)

    def place_data(actor: Actor) -> None:
        runtime.place_on_new_machine(actor, profile=unit_profile)

    log = CorfuLog(
        runtime,
        n_units=n_units,
        batch_size=lid_batch,
        placer=place_data,
        sequencer_grant_cost=1.0 / sequencer_capacity,
    )
    template = _template_record(record_size)
    for i in range(n_units):
        client = CorfuLoadClient(
            f"corfu/loadgen/{i}",
            log.sequencer.name,
            log.plan,
            template,
            target_rate=target_per_unit,
            grant_batch=grant_batch,
        )
        runtime.place_on_new_machine(client, profile=GENERATOR)

    runtime.run(until_time=duration)

    achieved = sum(
        runtime.metrics.rate(unit.name, "in_records", warmup, duration)
        for unit in log.units
    )
    grants = runtime.metrics.rate(log.sequencer.name, "in_messages", warmup, duration)
    return CorfuSimResult(
        n_units=n_units,
        target_per_unit=target_per_unit,
        achieved_total=achieved,
        sequencer_grants_per_second=grants,
        duration=duration,
    )
