"""Host-performance micro measurements with machine-readable output.

Unlike :mod:`.harness` (which reports *simulated* throughput), this module
times the actual Python implementation of the hot paths — wire codecs,
maintainer bulk append, filter admission, and the end-to-end pipeline
simulation — and emits the numbers as deterministic JSON
(``BENCH_micro.json`` / ``BENCH_pipeline.json``, sorted keys, no
timestamps) so perf regressions show up in review diffs.

Measurement method: every candidate in a comparison is timed in an
*interleaved best-of-N* loop — one repeat of each candidate per round,
keeping each candidate's best round.  CPU-frequency drift and scheduler
noise then hit all candidates alike instead of biasing whichever ran
first, which matters for the binary-vs-JSON speedup ratios the guard
test asserts.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from ..chariots.filters import FilterCore, FilterMap
from ..core.record import LogEntry, Record
from ..flstore.maintainer import MaintainerCore
from ..flstore.range_map import OwnershipPlan
from ..net.binary_codec import decode_value_binary, encode_value_binary
from ..net.codec import decode_message, encode_message
from .harness import run_pipeline_sim

DEFAULT_BATCH = 2_000
DEFAULT_REPEATS = 6


def interleaved_best_of(
    fns: Dict[str, Callable[[], Any]], ops: int, repeats: int = DEFAULT_REPEATS
) -> Dict[str, float]:
    """Best observed ops/sec per candidate, measured in interleaved rounds."""
    best = {name: 0.0 for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = perf_counter()
            fn()
            elapsed = perf_counter() - start
            rate = ops / elapsed if elapsed > 0 else 0.0
            if rate > best[name]:
                best[name] = rate
    return best


def sample_records(n: int, host: str = "dc-east") -> List[Record]:
    """Records shaped like the paper's workload: 512-byte body (§7), a
    couple of tags, one cross-datacenter dependency."""
    body = bytes(range(256)) * 2
    return [
        Record.make(
            host, t, body, tags={"k": "v", "src": host}, deps={"dc-west": t // 2}
        )
        for t in range(1, n + 1)
    ]


def _combined(enc: float, dec: float) -> float:
    """Round-trip (encode then decode) throughput from the two leg rates."""
    if enc <= 0 or dec <= 0:
        return 0.0
    return 1.0 / (1.0 / enc + 1.0 / dec)


def bench_codecs(
    batch: int = DEFAULT_BATCH, repeats: int = DEFAULT_REPEATS
) -> Dict[str, Any]:
    """Encode/decode ops/sec for the hot wire types under both codecs."""
    records = sample_records(batch)
    entries = [LogEntry(lid, record) for lid, record in enumerate(records)]
    results: Dict[str, Any] = {}
    for label, values in (("Record", records), ("LogEntry", entries)):
        bin_blobs = [encode_value_binary(v) for v in values]
        json_blobs = [
            json.dumps(encode_message(v), separators=(",", ":")).encode()
            for v in values
        ]
        rates = interleaved_best_of(
            {
                "binary/encode": lambda vs=values: [
                    encode_value_binary(v) for v in vs
                ],
                "binary/decode": lambda bs=bin_blobs: [
                    decode_value_binary(b) for b in bs
                ],
                "json/encode": lambda vs=values: [
                    json.dumps(encode_message(v), separators=(",", ":")).encode()
                    for v in vs
                ],
                "json/decode": lambda bs=json_blobs: [
                    decode_message(json.loads(b)) for b in bs
                ],
            },
            ops=batch,
            repeats=repeats,
        )
        combined_bin = _combined(rates["binary/encode"], rates["binary/decode"])
        combined_json = _combined(rates["json/encode"], rates["json/decode"])
        results[label] = {
            "binary": {
                "encode_ops_per_sec": round(rates["binary/encode"]),
                "decode_ops_per_sec": round(rates["binary/decode"]),
            },
            "json": {
                "encode_ops_per_sec": round(rates["json/encode"]),
                "decode_ops_per_sec": round(rates["json/decode"]),
            },
            "combined_speedup": round(combined_bin / combined_json, 2)
            if combined_json
            else 0.0,
        }
    return results


def bench_maintainer_append(
    batch: int = DEFAULT_BATCH, repeats: int = DEFAULT_REPEATS
) -> float:
    """Records/sec through ``MaintainerCore.append_count`` (bulk path)."""
    records = [Record.make("A", t, None) for t in range(1, batch + 1)]
    plan = OwnershipPlan(["m0", "m1", "m2"], batch_size=1000)

    def run() -> None:
        core = MaintainerCore("m0", plan)
        core.append_count(records)

    return round(interleaved_best_of({"append": run}, batch, repeats)["append"])


def bench_filter_admission(
    batch: int = DEFAULT_BATCH, repeats: int = DEFAULT_REPEATS
) -> float:
    """Records/sec through filter admission + duplicate rejection.

    Each round offers ``batch`` fresh records (all admitted via the dense-run
    path) and then the same records again (all dropped as duplicates), so the
    rate covers both legs of the dedup contract.
    """
    fmap = FilterMap(["f"])
    fmap.assign_host("A", ["f"])
    records = [Record.make("A", t, None) for t in range(1, batch + 1)]

    def run() -> None:
        core = FilterCore("f", fmap)
        core.offer_externals(records)
        core.offer_externals(records)

    return round(
        interleaved_best_of({"admit": run}, 2 * batch, repeats)["admit"]
    )


def run_micro_suite(
    batch: int = DEFAULT_BATCH, repeats: int = DEFAULT_REPEATS
) -> Dict[str, Any]:
    """The full micro-op report, in the shape written to BENCH_micro.json."""
    return {
        "method": {
            "batch": batch,
            "repeats": repeats,
            "strategy": "interleaved best-of-N",
        },
        "codec": bench_codecs(batch, repeats),
        "maintainer_append_ops_per_sec": bench_maintainer_append(batch, repeats),
        "filter_admission_ops_per_sec": bench_filter_admission(batch, repeats),
    }


def run_pipeline_suite(
    repeats: int = 3,
    baseline: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """End-to-end host cost of simulating one pipeline run.

    ``baseline`` (if given) is recorded verbatim under ``"baseline"`` —
    the committed report pins the pre-optimisation numbers there so the
    improvement stays visible in the file itself.
    """
    config = {"clients": 1, "duration": 0.8, "warmup": 0.3}
    best = None
    for _ in range(repeats):
        result = run_pipeline_sim(
            clients=1, duration=0.8, warmup=0.3
        )
        if best is None or result.wall_clock < best.wall_clock:
            best = result
    report: Dict[str, Any] = {
        "config": config,
        "current": {
            "records_stored": best.records_stored,
            "records_per_host_sec": round(best.records_stored / best.wall_clock)
            if best.wall_clock
            else 0,
            "wall_clock_seconds": round(best.wall_clock, 3),
        },
        "method": {"repeats": repeats, "strategy": "best wall-clock of N runs"},
    }
    if baseline is not None:
        report["baseline"] = baseline
    return report


def write_json_report(path: str, payload: Dict[str, Any]) -> None:
    """Deterministic serialisation: sorted keys, stable floats, no
    timestamps — reruns diff only where a measured rate moved."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
