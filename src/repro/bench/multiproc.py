"""Multi-process pipeline bench: the zero-copy ``RecordBatch`` wire path.

Unlike :mod:`.harness` (simulated throughput) and :mod:`.micro`
(single-process host costs), this module measures real parallelism: the
:class:`~repro.runtime.multiproc.MultiprocRuntime` hosts one
:class:`~repro.flstore.maintainer.LogMaintainer` per worker process, the
parent pre-encodes a template batch once with
:func:`~repro.net.binary_codec.encode_value_binary` and blasts the frame
over the sockets via :meth:`~repro.runtime.multiproc.MultiprocRuntime.send_encoded`.
Each worker decodes lazily (memoryview spans, no per-record objects on the
routing path) and lands the run through the maintainer's bulk-append fast
path, so the measured rate isolates the wire + ingest cost.

``workers=0`` runs the identical codec round trip inline in one process —
the single-process baseline the committed ``BENCH_multiproc.json`` scales
against.  The report follows the deterministic shape of
``BENCH_pipeline.json`` (sorted keys, no timestamps).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..chaos.plan import FaultPlan
from ..chaos.procchaos import ProcChaos
from ..core.causality import causal_order_respected
from ..core.record import Record, RecordId
from ..flstore.maintainer import LogMaintainer
from ..flstore.range_map import OwnershipPlan
from ..net.binary_codec import encode_value_binary
from ..runtime.messages import RecordBatch
from ..runtime.multiproc import MultiprocRuntime
from ..runtime.supervisor import ProcessSupervisor
from .micro import write_json_report

DEFAULT_TOTAL = 200_000
DEFAULT_BATCH = 1_000
DEFAULT_RECORD_SIZE = 512
DEFAULT_SWEEP: Tuple[int, ...] = (0, 2, 4, 8)
DEFAULT_REPEATS = 3


def _maintainer_names(n: int) -> List[str]:
    return [f"bench/maintainer/{i}" for i in range(n)]


def bench_placement(name: str, workers: int) -> Optional[int]:
    """One maintainer per worker: pin by trailing index, round-robin."""
    if workers <= 0 or "/maintainer/" not in name:
        return None
    return int(name.rsplit("/", 1)[1]) % workers


def _stored(actor: Any) -> int:
    """Module-level so :meth:`MultiprocRuntime.peek` can pickle it by ref."""
    count: int = actor.core.stored_count()
    return count


def _template_frame(batch_size: int, record_size: int) -> bytes:
    """One contiguous ``0x15`` batch frame, encoded exactly once.

    The rids repeat across resends; maintainers assign a fresh lid per
    record regardless, so the stored count still tracks delivered records.
    """
    body = bytes(record_size)
    records = [
        Record(rid=RecordId("bench", toid + 1), body=body)
        for toid in range(batch_size)
    ]
    return encode_value_binary(RecordBatch(records))


@dataclass
class MultiprocBenchResult:
    """One measured point of the worker sweep."""

    workers: int
    records_stored: int
    wall_clock: float
    bytes_routed: int

    @property
    def records_per_host_sec(self) -> float:
        return self.records_stored / self.wall_clock if self.wall_clock else 0.0


def run_pipeline_multiproc(
    workers: int,
    total_records: int = DEFAULT_TOTAL,
    batch_size: int = DEFAULT_BATCH,
    record_size: int = DEFAULT_RECORD_SIZE,
    timeout: float = 120.0,
) -> MultiprocBenchResult:
    """Blast ``total_records`` through ``max(workers, 1)`` maintainers.

    The clock starts at the first send and stops when every worker has
    acknowledged (via :meth:`~repro.runtime.multiproc.MultiprocRuntime.peek`)
    storing its full share — wire transfer, lazy decode, and bulk append
    are all inside the measured window.
    """
    n_maintainers = max(workers, 1)
    names = _maintainer_names(n_maintainers)
    plan = OwnershipPlan(names, batch_size=batch_size)
    runtime = MultiprocRuntime(workers=workers, placement=bench_placement)
    for name in names:
        runtime.register(LogMaintainer(name, plan, peers=names))

    frame = _template_frame(batch_size, record_size)
    n_batches = total_records // batch_size
    expected = n_batches * batch_size

    try:
        runtime.start()
        prepared = [
            runtime.prepare_encoded("bench/driver", name, frame)
            for name in names
        ]

        def stored_total() -> int:
            return sum(runtime.peek(name, _stored) for name in names)

        start = perf_counter()
        for index in range(n_batches):
            runtime.send_prepared(prepared[index % n_maintainers])
        runtime.run_until(lambda: stored_total() >= expected, timeout=timeout)
        wall = perf_counter() - start
        return MultiprocBenchResult(
            workers=workers,
            records_stored=expected,
            wall_clock=wall,
            bytes_routed=runtime.bytes_routed,
        )
    finally:
        runtime.stop()


def run_multiproc_suite(
    sweep: Sequence[int] = DEFAULT_SWEEP,
    total_records: int = DEFAULT_TOTAL,
    batch_size: int = DEFAULT_BATCH,
    record_size: int = DEFAULT_RECORD_SIZE,
    repeats: int = DEFAULT_REPEATS,
    baseline: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The full worker sweep, in the shape written to ``BENCH_multiproc.json``.

    Each sweep point keeps its best wall clock of ``repeats`` runs (process
    spawn cost is excluded — the clock covers send-to-stored only).
    ``baseline`` (if given) is recorded verbatim under ``"baseline"`` so the
    speedup over the single-process pipeline stays visible in the file.
    """
    points: List[Dict[str, Any]] = []
    for workers in sweep:
        best: Optional[MultiprocBenchResult] = None
        for _ in range(repeats):
            result = run_pipeline_multiproc(
                workers,
                total_records=total_records,
                batch_size=batch_size,
                record_size=record_size,
            )
            if best is None or result.wall_clock < best.wall_clock:
                best = result
        assert best is not None
        points.append(
            {
                "workers": best.workers,
                "records_stored": best.records_stored,
                "records_per_host_sec": round(best.records_per_host_sec),
                "wall_clock_seconds": round(best.wall_clock, 3),
                "bytes_routed": best.bytes_routed,
            }
        )
    # Scale against the inline (workers=0) point when the sweep has one;
    # otherwise against the slowest point, so partial sweeps still report.
    single = min(points, key=lambda p: (int(p["workers"]) != 0, int(p["workers"])))
    peak = max(points, key=lambda p: int(p["records_per_host_sec"]))
    report: Dict[str, Any] = {
        "config": {
            "batch_size": batch_size,
            "host_cpus": os.cpu_count(),
            "record_size": record_size,
            "total_records": total_records,
        },
        "current": {
            "peak_records_per_host_sec": peak["records_per_host_sec"],
            "peak_workers": peak["workers"],
            "points": points,
            "speedup_over_single_process": round(
                int(peak["records_per_host_sec"])
                / int(single["records_per_host_sec"]),
                2,
            )
            if single["records_per_host_sec"]
            else 0.0,
        },
        "method": {
            "repeats": repeats,
            "strategy": "best wall-clock of N runs per sweep point; "
            "clock covers send-to-stored, spawn excluded",
        },
    }
    if baseline is not None:
        report["baseline"] = baseline
        pipeline_rate = baseline.get("pipeline_records_per_host_sec")
        if pipeline_rate:
            report["current"]["speedup_over_pipeline_baseline"] = round(
                int(peak["records_per_host_sec"]) / int(pipeline_rate), 2
            )
    return report


def pipeline_placement(
    datacenters: Sequence[str], workers: int
) -> Callable[[str, int], Optional[int]]:
    """Deterministic per-datacenter placement for chaos runs.

    Datacenter ``i``'s pipeline *stages* (batchers, filters, queues,
    senders, receivers) land on worker ``2i`` and its *maintainers +
    indexers* on worker ``2i + 1`` (mod ``workers``), so a single
    ``FaultPlan.kill()`` can target exactly "one stage worker" or "one
    maintainer worker" of a datacenter by actor name.  Control-plane actors
    stay in the parent.
    """
    order = {dc: i for i, dc in enumerate(sorted(datacenters))}
    stage_markers = ("batcher", "filter", "queue", "sender", "receiver")
    store_markers = ("store", "maintainer", "indexer")

    def placement(name: str, w: int) -> Optional[int]:
        if w <= 0:
            return None
        dc = name.split("/", 1)[0]
        if dc not in order:
            return None
        lowered = name.lower()
        if any(marker in lowered for marker in store_markers):
            return (2 * order[dc] + 1) % w
        if any(marker in lowered for marker in stage_markers):
            return (2 * order[dc]) % w
        return None

    return placement


def run_deployment_multiproc_chaos(
    datacenters: Sequence[str] = ("A", "B"),
    workers: int = 4,
    appends: int = 24,
    batch_size: int = 8,
    plan: Optional[FaultPlan] = None,
    journal_dir: Optional[str] = None,
    timeout: float = 120.0,
) -> Dict[str, Any]:
    """One full Chariots deployment on real processes, under process chaos.

    Runs ``appends`` client appends (round-robin over ``datacenters``)
    through a supervised :class:`MultiprocRuntime` while ``plan``'s
    ``kill()`` events SIGKILL workers mid-run, waits for every recovery to
    complete and the log to converge, and returns the outcome + recovery
    metrics.  Shared by the ``multiproc-crash-recovery`` scenario entry,
    the ``-m slow`` acceptance test, and the CI chaos smoke job.
    """
    chaos = ProcChaos.from_plan(plan) if plan is not None else None
    kills_expected = len(plan.kills) if plan is not None else 0
    dcs = list(datacenters)
    owned_dir: Optional[tempfile.TemporaryDirectory] = None
    if journal_dir is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="repro-mp-journals-")
        journal_dir = owned_dir.name
    runtime = MultiprocRuntime(
        workers=workers,
        placement=pipeline_placement(dcs, workers),
        chaos=chaos,
    )
    try:
        # Imported lazily: chariots/ imports bench nothing, but keeping the
        # bench module importable without the full deployment stack matters
        # for the micro harness.
        from ..chariots import ChariotsDeployment

        deployment = ChariotsDeployment(runtime, dcs, batch_size=batch_size)
        supervisor = ProcessSupervisor()
        deployment.supervise(supervisor, journal_dir=journal_dir)
        runtime.start()
        clients = {dc: deployment.client(dc) for dc in dcs}
        acks: List[Any] = []
        started = perf_counter()
        for i in range(appends):
            clients[dcs[i % len(dcs)]].append(f"p{i}", on_done=acks.append)
        runtime.run_until(lambda: len(acks) == appends, timeout=timeout)
        if chaos is not None and kills_expected:
            runtime.run_until(
                lambda: chaos.stats["workers_killed"] >= kills_expected,
                timeout=timeout,
            )
            runtime.run_until(
                lambda: len(supervisor.recoveries) >= kills_expected,
                timeout=timeout,
            )
        converged = runtime.settle(
            lambda: deployment.converged() and deployment._pipelines_drained(),
            max_seconds=timeout,
        )
        wall = perf_counter() - started
        records: Dict[str, int] = {}
        gap_free = True
        duplicate_free = True
        causal_ok = True
        for dc in dcs:
            entries = deployment[dc].all_entries()
            records[dc] = len(entries)
            lids = [entry.lid for entry in entries]
            duplicate_free = duplicate_free and len(lids) == len(set(lids))
            gap_free = gap_free and (
                not lids or lids == list(range(lids[0], lids[0] + len(lids)))
            )
            causal_ok = causal_ok and causal_order_respected(
                [entry.record for entry in entries]
            )
        recovery_seconds = [r["seconds"] for r in supervisor.recoveries]
        return {
            "acked": len(acks),
            "appends": appends,
            "converged": converged,
            "causal_order_ok": causal_ok,
            "gap_free": gap_free,
            "duplicate_free": duplicate_free,
            "records_per_dc": records,
            "workers_killed": int(chaos.stats["workers_killed"]) if chaos else 0,
            "frames_dropped": int(chaos.stats["frames_dropped"]) if chaos else 0,
            "recoveries": len(supervisor.recoveries),
            "frames_replayed": sum(r["replayed"] for r in supervisor.recoveries),
            "recovery_seconds_max": round(max(recovery_seconds), 3)
            if recovery_seconds
            else 0.0,
            "recovery_seconds_mean": round(
                sum(recovery_seconds) / len(recovery_seconds), 3
            )
            if recovery_seconds
            else 0.0,
            "loss_accounting": dict(runtime.loss_accounting),
            "wall_clock_seconds": round(wall, 3),
        }
    finally:
        runtime.stop()
        if owned_dir is not None:
            owned_dir.cleanup()


def pipeline_baseline(path: str) -> Optional[Dict[str, Any]]:
    """The committed single-process pipeline rate (``BENCH_pipeline.json``),
    pinned into the report so the wire path's speedup stays visible."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    rate = data.get("current", {}).get("records_per_host_sec")
    if not rate:
        return None
    return {
        "pipeline_records_per_host_sec": rate,
        "source": os.path.basename(path),
    }


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        description="multi-process zero-copy RecordBatch pipeline bench"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=list(DEFAULT_SWEEP),
        help="worker-count sweep (0 = single-process inline baseline)",
    )
    parser.add_argument("--total-records", type=int, default=DEFAULT_TOTAL)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--record-size", type=int, default=DEFAULT_RECORD_SIZE)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--json-out", default=None, metavar="PATH", help="write the report"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="BENCH_pipeline.json to pin as the single-process baseline",
    )
    args = parser.parse_args(argv)
    report = run_multiproc_suite(
        sweep=tuple(args.workers),
        total_records=args.total_records,
        batch_size=args.batch_size,
        record_size=args.record_size,
        repeats=args.repeats,
        baseline=pipeline_baseline(args.baseline) if args.baseline else None,
    )
    for point in report["current"]["points"]:
        print(
            f"  workers={point['workers']:<2} "
            f"{point['records_per_host_sec']:>10,} records/s  "
            f"({point['wall_clock_seconds']}s)"
        )
    print(
        f"  peak {report['current']['peak_records_per_host_sec']:,} records/s "
        f"at {report['current']['peak_workers']} workers, "
        f"{report['current']['speedup_over_single_process']}x single-process"
    )
    if args.json_out:
        write_json_report(args.json_out, report)


if __name__ == "__main__":
    main()
