"""Table 1: comparison of shared log services (§2.3).

The paper positions Chariots as the only shared log offering causal
consistency together with both per-replica partitioning and replication.
This module encodes the table as data so the claim is testable and the
benchmark harness can reprint it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class SystemEntry:
    """One row of Table 1."""

    name: str
    consistency: str  # "strong" or "causal"
    partitioned: bool  # log spans >1 machine per replica
    replicated: bool  # >1 independent copy of the log
    reference: str


TABLE1: Tuple[SystemEntry, ...] = (
    SystemEntry("CORFU/Tango", "strong", True, False, "[7, 8]"),
    SystemEntry("LogBase", "strong", True, False, "[33]"),
    SystemEntry("RAMCloud", "strong", True, False, "[29]"),
    SystemEntry("Blizzard", "strong", True, False, "[25]"),
    SystemEntry("Ivy", "strong", True, False, "[26]"),
    SystemEntry("Zebra", "strong", True, False, "[18]"),
    SystemEntry("Hyder", "strong", True, False, "[11]"),
    SystemEntry("Megastore", "strong", False, True, "[6]"),
    SystemEntry("Paxos-CP", "strong", False, True, "[30]"),
    SystemEntry("Message Futures", "causal", False, True, "[27]"),
    SystemEntry("PRACTI", "causal", False, True, "[10]"),
    SystemEntry("Bayou", "causal", False, True, "[32]"),
    SystemEntry("Lazy Replication", "causal", False, True, "[19]"),
    SystemEntry("Replicated Dictionary", "causal", False, True, "[36]"),
    SystemEntry("Chariots", "causal", True, True, "this work"),
)


def groups() -> List[Tuple[str, bool, bool, List[str]]]:
    """Table 1's four (consistency, partitioned, replicated) groups."""
    seen: List[Tuple[str, bool, bool]] = []
    out: List[Tuple[str, bool, bool, List[str]]] = []
    for entry in TABLE1:
        key = (entry.consistency, entry.partitioned, entry.replicated)
        if key not in seen:
            seen.append(key)
            out.append((*key, []))
        for row in out:
            if (row[0], row[1], row[2]) == key:
                row[3].append(entry.name)
    return out


def systems_with(
    consistency: str, partitioned: bool, replicated: bool
) -> List[SystemEntry]:
    return [
        e
        for e in TABLE1
        if e.consistency == consistency
        and e.partitioned == partitioned
        and e.replicated == replicated
    ]


def chariots_fills_the_void() -> bool:
    """The paper's positioning claim: causal + partitioned + replicated is
    occupied by Chariots alone."""
    matches = systems_with("causal", True, True)
    return len(matches) == 1 and matches[0].name == "Chariots"


def render() -> str:
    """Pretty-print Table 1 in the paper's grouping."""
    mark = {True: "3", False: "7"}  # the paper's check/cross glyphs
    lines = [
        "Consistency  Partitioned  Replicated  Systems",
        "-" * 72,
    ]
    for consistency, partitioned, replicated, names in groups():
        lines.append(
            f"{consistency.capitalize():<12} {mark[partitioned]:^11} "
            f"{mark[replicated]:^10}  {', '.join(names)}"
        )
    return "\n".join(lines)
