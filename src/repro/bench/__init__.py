"""Benchmark harness mapping §7's experiments onto the simulator."""

from .comparison import TABLE1, SystemEntry, chariots_fills_the_void, render
from .harness import (
    GENERATOR,
    CorfuSimResult,
    FLStoreSimResult,
    PipelineSimResult,
    run_corfu_sim,
    run_flstore_sim,
    run_pipeline_sim,
)

__all__ = [
    "CorfuSimResult",
    "FLStoreSimResult",
    "GENERATOR",
    "PipelineSimResult",
    "SystemEntry",
    "TABLE1",
    "chariots_fills_the_void",
    "render",
    "run_corfu_sim",
    "run_flstore_sim",
    "run_pipeline_sim",
]
