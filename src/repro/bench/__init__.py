"""Benchmark harness mapping §7's experiments onto the simulator."""

from .comparison import TABLE1, SystemEntry, chariots_fills_the_void, render
from .harness import (
    GENERATOR,
    CorfuSimResult,
    FLStoreSimResult,
    PipelineSimResult,
    run_corfu_sim,
    run_flstore_sim,
    run_pipeline_sim,
)
from .micro import (
    bench_codecs,
    bench_filter_admission,
    bench_maintainer_append,
    interleaved_best_of,
    run_micro_suite,
    run_pipeline_suite,
    write_json_report,
)
# Imported lazily (PEP 562): eager import would shadow the module under
# ``python -m repro.bench.multiproc`` (runpy double-import warning) and
# re-trigger in every spawned worker process.
_MULTIPROC_EXPORTS = (
    "MultiprocBenchResult",
    "run_multiproc_suite",
    "run_pipeline_multiproc",
)


def __getattr__(name: str) -> object:
    if name in _MULTIPROC_EXPORTS:
        from . import multiproc

        return getattr(multiproc, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CorfuSimResult",
    "FLStoreSimResult",
    "GENERATOR",
    "MultiprocBenchResult",
    "PipelineSimResult",
    "SystemEntry",
    "TABLE1",
    "bench_codecs",
    "bench_filter_admission",
    "bench_maintainer_append",
    "chariots_fills_the_void",
    "interleaved_best_of",
    "render",
    "run_corfu_sim",
    "run_flstore_sim",
    "run_micro_suite",
    "run_multiproc_suite",
    "run_pipeline_multiproc",
    "run_pipeline_suite",
    "write_json_report",
]
